//! The **evented** TCP transport: one thread, one `epoll` loop, every
//! connection in slab storage — the fan-out path that scales to 10k+
//! concurrent tuners on a single core.
//!
//! Where [`crate::TcpTransport`] spends an OS thread per connection, this
//! transport multiplexes every socket over a single readiness-polling
//! event loop ([`mini_mio::Poll`], epoll under the hood):
//!
//! * **Slab storage** — connections live in a dense `Vec<Option<EvConn>>`
//!   indexed by their poll [`Token`]; a free list recycles slots, and
//!   indices freed mid-pump are quarantined one pump so a stale readiness
//!   event can never alias a new connection.
//! * **Broadcast-once frames** — each slot's wire frame is encoded exactly
//!   once into an `Arc<[u8]>` and every connection's backlog holds a
//!   refcount to the same bytes. Per-connection send state is nothing but
//!   a bounded deque of frame refs plus a byte cursor into the front
//!   buffer, so steady-state broadcast is allocation-free no matter the
//!   fan-out (`tests/alloc_evented.rs` pins this).
//! * **Coalesced vectored writes** — a flush folds up to
//!   [`TcpTransportConfig::max_coalesce`] backlog buffers into one
//!   `writev`, resuming across partial writes via the cursor. `WouldBlock`
//!   arms `WRITABLE` interest; the next writable event continues the drain
//!   and disarms when the backlog empties.
//! * **Backpressure parity** — the same [`Backpressure`] semantics as the
//!   threaded transport: `DropNewest` skips the new frame for a full
//!   backlog, `Disconnect` evicts the slow consumer, `Block` is rejected
//!   at bind (a broadcast medium never stalls on one receiver).
//! * **Fault parity** — kills, erasure, corruption, and delay run through
//!   the same `FaultSwitchboard` choke point and the same
//!   `encode_corrupted` bit-flipper as the threaded path, so
//!   `tests/evented_equivalence.rs` can pin the two transports to
//!   bit-identical delivered streams.
//!
//! Writes are batched: frames accumulate in per-connection backlogs and
//! are flushed every few broadcasts (or on a writable event). This trades
//! a bounded delivery delay — irrelevant to measurements, since a live
//! client's virtual time is the frame's slot sequence number, not its
//! arrival instant — for syscall amortization across slots, on top of the
//! write amplification already being O(1) per slot in payload bytes.

use std::collections::VecDeque;
use std::io::{self, IoSlice, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bdisk_obs::journal::{event, EventKind};
use bdisk_obs::trace;
use mini_mio::{Events, Interest, Poll, Token};

use crate::faults::{encode_corrupted, FaultCounts, FaultPlan, FaultSwitchboard, InjectedFrame};
use crate::tcp_threaded::TcpTransportConfig;
use crate::transport::{Backpressure, DeliveryStats, Frame, PullRequest, Transport};
use crate::upstream::UpstreamParser;

/// Poll token reserved for the listening socket (connection tokens are
/// slab indices, which can never reach this).
const LISTENER_TOKEN: Token = Token(usize::MAX);

/// How many of the slowest consumers get their own labeled gauge rank
/// (`bd_slow_consumer_lag{rank}` / `bd_slow_consumer_conn{rank}`).
const SLOW_CONSUMER_TOP_K: usize = 4;

/// Most backlog buffers folded into one vectored write; bounds the
/// stack-allocated `IoSlice` array (IOV_MAX is far larger).
const MAX_BATCH: usize = 64;

/// Cap on parsed-but-undrained upstream requests held by the transport.
/// The engine drains every tick; this only bounds memory if it stops
/// draining (or a pull-disabled run faces request-writing clients).
const MAX_PENDING_REQUESTS: usize = 65_536;

/// Per-connection state: all of it. The backlog holds refcounts to shared
/// wire frames; `cursor` is how many bytes of the front buffer have
/// already reached the socket.
struct EvConn {
    /// Stable id (accept order) — fault plans key per-client kills on it.
    id: u64,
    stream: TcpStream,
    backlog: VecDeque<Arc<[u8]>>,
    cursor: usize,
    /// `WRITABLE` interest is currently registered (flush hit
    /// `WouldBlock`); the writable event resumes the drain.
    armed: bool,
    /// Reassembles this connection's upstream byte stream into pull
    /// requests. Readable events drain the socket through this parser
    /// (instead of discarding the bytes) — garbage from a push-only
    /// client is skipped and counted, never a reason to disconnect.
    upstream: UpstreamParser,
}

/// Removes the connection at `idx` from the slab: deregisters it, shuts
/// the socket down, and quarantines the slot index in `pending_free` until
/// the next pump (a readiness event already harvested for this token must
/// not alias a future connection). Returns the connection id, or `None`
/// when the slot was already empty.
fn evict_slot(
    poll: &Poll,
    slab: &mut [Option<EvConn>],
    pending_free: &mut Vec<usize>,
    live: &mut usize,
    idx: usize,
) -> Option<u64> {
    let conn = slab[idx].take()?;
    let _ = poll.deregister(&conn.stream);
    let _ = conn.stream.shutdown(Shutdown::Both);
    pending_free.push(idx);
    *live -= 1;
    Some(conn.id)
}

/// Drains as much of the connection's backlog as the socket accepts:
/// coalesced vectored writes, cursor resume across partial writes,
/// `WouldBlock` arms `WRITABLE` interest (disarmed once empty). `Err`
/// means the connection is dead and must be evicted.
fn flush_conn(poll: &Poll, conn: &mut EvConn, idx: usize, max_coalesce: usize) -> io::Result<()> {
    // Stage tracing charges socket-drain wall time to the next sampled
    // slot via the drain accumulator. One relaxed load when tracing is
    // off — the clock is never read on the untraced path.
    let drain_start = (trace::sample_every() != 0).then(std::time::Instant::now);
    let res = flush_conn_inner(poll, conn, idx, max_coalesce);
    if let Some(start) = drain_start {
        trace::note_drain_micros(start.elapsed().as_micros() as u64);
    }
    res
}

fn flush_conn_inner(
    poll: &Poll,
    conn: &mut EvConn,
    idx: usize,
    max_coalesce: usize,
) -> io::Result<()> {
    let m = crate::obs::evented();
    let tcp_m = crate::obs::tcp();
    while !conn.backlog.is_empty() {
        let batch = conn.backlog.len().min(max_coalesce).min(MAX_BATCH);
        let mut total = 0usize;
        // Fixed-size stack array: the hot path never allocates an iovec.
        let iov: [IoSlice<'_>; MAX_BATCH] = std::array::from_fn(|i| {
            if i < batch {
                let start = if i == 0 { conn.cursor } else { 0 };
                let buf = &conn.backlog[i][start..];
                total += buf.len();
                IoSlice::new(buf)
            } else {
                IoSlice::new(&[])
            }
        });
        tcp_m.coalesce_batch.record(batch as u64);
        match conn.stream.write_vectored(&iov[..batch]) {
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::WriteZero,
                    "socket write returned zero",
                ));
            }
            Ok(mut n) => {
                if n < total {
                    m.partial_writes.inc();
                }
                // Retire fully-written buffers; the cursor remembers the
                // split point inside the front one.
                while n > 0 {
                    let front_left = conn.backlog.front().map_or(0, |b| b.len() - conn.cursor);
                    if n >= front_left {
                        n -= front_left;
                        conn.backlog.pop_front();
                        conn.cursor = 0;
                    } else {
                        conn.cursor += n;
                        n = 0;
                    }
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                if !conn.armed {
                    conn.armed = true;
                    poll.reregister(
                        &conn.stream,
                        Token(idx),
                        Interest::READABLE | Interest::WRITABLE,
                    )?;
                }
                return Ok(());
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    if conn.armed {
        conn.armed = false;
        poll.reregister(&conn.stream, Token(idx), Interest::READABLE)?;
    }
    Ok(())
}

/// Broadcast server over loopback TCP, event-loop edition.
///
/// Drop-in replacement for [`crate::TcpTransport`] behind the
/// [`Transport`] trait: same wire format, same backpressure and fault
/// semantics, same accounting — but one thread total, and a connection
/// costs a slab slot instead of an OS thread. `repro bench --transport`
/// compares the two; `tests/evented_equivalence.rs` pins them
/// bit-identical.
pub struct EventedTcpTransport {
    addr: SocketAddr,
    cfg: TcpTransportConfig,
    listener: TcpListener,
    poll: Poll,
    events: Events,
    slab: Vec<Option<EvConn>>,
    /// Slab indices free for reuse.
    free: Vec<usize>,
    /// Indices freed since the last pump — quarantined until the next
    /// poll so a stale event cannot alias a recycled token.
    pending_free: Vec<usize>,
    /// Occupied slab slots.
    live: usize,
    next_conn_id: u64,
    /// Broadcasts since the last backlog flush.
    since_flush: usize,
    /// Flush cadence: every this many broadcasts (writable events flush
    /// eagerly in between).
    flush_every: usize,
    /// Reusable buffer for draining client-to-server bytes.
    read_scratch: Box<[u8]>,
    /// Total client-to-server bytes drained (the upstream channel of the
    /// asymmetric link — tiny by design).
    upstream_bytes: u64,
    /// Pull requests parsed off connections, awaiting `take_requests`.
    pending_requests: Vec<PullRequest>,
    /// Requests discarded because `pending_requests` hit its cap.
    requests_dropped: u64,
    /// Per-channel fault choke points (default plan + overrides).
    faults: FaultSwitchboard,
    /// Per-channel fan-out counters, cached off the registry.
    channel_frames: crate::obs::ChannelCounters,
    /// Cached `bd_slow_consumer_lag{rank}` gauges, slowest first.
    slow_lag: [&'static bdisk_obs::registry::Gauge; SLOW_CONSUMER_TOP_K],
    /// Cached `bd_slow_consumer_conn{rank}` gauges, parallel to `slow_lag`.
    slow_conn: [&'static bdisk_obs::registry::Gauge; SLOW_CONSUMER_TOP_K],
    /// Encoded greeting frame enqueued to every new connection before any
    /// broadcast traffic (the epoch hello fence).
    hello: Option<Arc<[u8]>>,
}

impl EventedTcpTransport {
    /// Binds `127.0.0.1:0` and registers the listener with the poll; no
    /// threads are spawned, ever.
    pub fn bind(cfg: TcpTransportConfig) -> io::Result<Self> {
        assert!(
            cfg.backpressure != Backpressure::Block,
            "TCP transport cannot block the broadcast on one socket; \
             use DropNewest or Disconnect"
        );
        assert!(cfg.queue_capacity > 0, "need send-buffer capacity");
        assert!(cfg.max_coalesce > 0, "flushes must send at least one frame");
        let listener = TcpListener::bind("127.0.0.1:0")?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let poll = Poll::new()?;
        poll.register(&listener, LISTENER_TOKEN, Interest::READABLE)?;
        // Flush often enough that a backlog never fills from batching
        // alone, rarely enough to amortize the write syscalls.
        let flush_every = cfg.max_coalesce.min(cfg.queue_capacity / 2).max(1);
        Ok(Self {
            addr,
            cfg,
            listener,
            poll,
            events: Events::with_capacity(1024),
            slab: Vec::new(),
            free: Vec::new(),
            pending_free: Vec::new(),
            live: 0,
            next_conn_id: 0,
            since_flush: 0,
            flush_every,
            read_scratch: vec![0u8; 4096].into_boxed_slice(),
            upstream_bytes: 0,
            pending_requests: Vec::new(),
            requests_dropped: 0,
            faults: FaultSwitchboard::new(),
            channel_frames: crate::obs::ChannelCounters::new(crate::obs::fanout_by_channel),
            slow_lag: std::array::from_fn(crate::obs::slow_consumer_lag),
            slow_conn: std::array::from_fn(crate::obs::slow_consumer_conn),
            hello: None,
        })
    }

    /// The address clients connect to.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Client-to-server bytes drained off connection sockets so far.
    pub fn upstream_bytes(&self) -> u64 {
        self.upstream_bytes
    }

    /// Upstream bytes rejected by the request parsers (garbage, corrupt
    /// records, overflow discards) across all live connections.
    pub fn upstream_rejected_bytes(&self) -> u64 {
        self.slab
            .iter()
            .flatten()
            .map(|c| c.upstream.rejected_bytes())
            .sum()
    }

    /// Requests discarded at the transport's pending cap so far.
    pub fn requests_dropped(&self) -> u64 {
        self.requests_dropped
    }

    /// Installs (or, with [`FaultPlan::is_none`], removes) the fault plan
    /// this transport's broadcasts run under, on **every** channel
    /// (clearing per-channel overrides). A zero plan leaves the broadcast
    /// path bit-identical to never having called this.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.faults.set_default(plan);
    }

    /// Overrides the fault plan for one broadcast channel (other channels
    /// keep the [`Self::set_fault_plan`] default, or run clean without
    /// one).
    pub fn set_channel_fault_plan(&mut self, channel: u16, plan: FaultPlan) {
        self.faults.set_channel(channel, plan);
    }

    /// Faults injected so far, summed over every channel's injector.
    pub fn fault_counts(&self) -> FaultCounts {
        self.faults.counts()
    }

    /// Runs one turn of the event loop (accepts, reads, resumed writes);
    /// returns the current client count. The threaded transport's
    /// `poll_accept` equivalent.
    pub fn poll_accept(&mut self) -> usize {
        let mut stats = DeliveryStats::default();
        self.pump(Some(Duration::ZERO), &mut stats);
        self.live
    }

    /// Waits until at least `n` clients are connected, pumping the event
    /// loop. Returns `false` promptly at the deadline — the final poll
    /// timeout is clamped to the time remaining.
    pub fn wait_for_clients(&mut self, n: usize, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut stats = DeliveryStats::default();
        loop {
            if self.live >= n {
                return true;
            }
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            let wait = (deadline - now).min(Duration::from_millis(1));
            self.pump(Some(wait), &mut stats);
        }
    }

    /// One event-loop turn: release quarantined slab slots, poll, then
    /// handle accepts, client reads (upstream bytes, hangups), and
    /// writable events (backlog resume). Disconnections detected here are
    /// charged to `stats`.
    fn pump(&mut self, timeout: Option<Duration>, stats: &mut DeliveryStats) {
        let m = crate::obs::evented();
        let tcp_m = crate::obs::tcp();
        // Slots freed during the previous pump are safe to recycle now:
        // their sockets were deregistered before this poll, so no stale
        // event can carry their token anymore.
        self.free.append(&mut self.pending_free);
        let Self {
            poll,
            events,
            listener,
            slab,
            free,
            pending_free,
            live,
            next_conn_id,
            cfg,
            read_scratch,
            upstream_bytes,
            pending_requests,
            requests_dropped,
            hello,
            ..
        } = self;
        match poll.poll(events, timeout) {
            Ok(0) | Err(_) => {}
            Ok(_) => m.poll_wakeups.inc(),
        }
        for ev in events.iter() {
            if ev.token() == LISTENER_TOKEN {
                // Accept everything queued (level-triggered, but draining
                // now keeps the backlog short during connect storms).
                while let Ok((stream, _)) = listener.accept() {
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    let idx = free.pop().unwrap_or_else(|| {
                        slab.push(None);
                        slab.len() - 1
                    });
                    if poll
                        .register(&stream, Token(idx), Interest::READABLE)
                        .is_err()
                    {
                        free.push(idx);
                        continue;
                    }
                    let id = *next_conn_id;
                    *next_conn_id += 1;
                    let mut backlog = VecDeque::with_capacity(cfg.queue_capacity);
                    // The greeting rides the normal backlog, so it reaches
                    // the socket ahead of any broadcast frame.
                    if let Some(hello) = hello {
                        backlog.push_back(Arc::clone(hello));
                    }
                    slab[idx] = Some(EvConn {
                        id,
                        stream,
                        backlog,
                        cursor: 0,
                        armed: false,
                        upstream: UpstreamParser::new(),
                    });
                    *live += 1;
                    tcp_m.accepted.inc();
                }
                continue;
            }
            let idx = ev.token().0;
            if idx >= slab.len() {
                continue;
            }
            let mut dead = false;
            if ev.is_readable() {
                if let Some(conn) = slab[idx].as_mut() {
                    // Drain the upstream direction explicitly: every byte
                    // read goes through the connection's request parser
                    // (valid records become pull requests; everything
                    // else is skipped and counted — never fatal). EOF or
                    // a socket error means the tuner hung up.
                    loop {
                        match conn.stream.read(read_scratch) {
                            Ok(0) => {
                                dead = true;
                                break;
                            }
                            Ok(n) => {
                                *upstream_bytes += n as u64;
                                conn.upstream.feed(&read_scratch[..n], pending_requests);
                            }
                            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                            Err(_) => {
                                dead = true;
                                break;
                            }
                        }
                    }
                    if pending_requests.len() > MAX_PENDING_REQUESTS {
                        let excess = pending_requests.len() - MAX_PENDING_REQUESTS;
                        *requests_dropped += excess as u64;
                        pending_requests.truncate(MAX_PENDING_REQUESTS);
                    }
                }
            }
            if !dead && ev.is_writable() {
                if let Some(conn) = slab[idx].as_mut() {
                    if conn.backlog.is_empty() {
                        // Backlog emptied between arming and this event.
                        m.writable_spurious.inc();
                        if conn.armed {
                            conn.armed = false;
                            let _ = poll.reregister(&conn.stream, Token(idx), Interest::READABLE);
                        }
                    } else if flush_conn(poll, conn, idx, cfg.max_coalesce).is_err() {
                        dead = true;
                    }
                }
            }
            if dead {
                if let Some(id) = evict_slot(poll, slab, pending_free, live, idx) {
                    stats.disconnected += 1;
                    event(EventKind::Disconnect, id, 0);
                }
            }
        }
        tcp_m.connections.set(*live as i64);
        m.slab_occupancy.set(*live as i64);
    }

    /// Appends one shared wire frame to every live backlog, applying
    /// backpressure. O(clients) refcount bumps; zero byte copies, zero
    /// allocations.
    fn enqueue_all(&mut self, wire: &Arc<[u8]>, stats: &mut DeliveryStats) {
        let tcp_m = crate::obs::tcp();
        let stage_m = crate::obs::stage();
        let Self {
            poll,
            slab,
            pending_free,
            live,
            cfg,
            slow_lag,
            slow_conn,
            ..
        } = self;
        // Slowest consumers this broadcast: a fixed-size descending
        // insertion keeps the top-K without allocating on the hot path.
        let mut top: [(usize, u64); SLOW_CONSUMER_TOP_K] = [(0, 0); SLOW_CONSUMER_TOP_K];
        let mut watermark = 0usize;
        for idx in 0..slab.len() {
            let (backlog, conn_id) = match slab[idx].as_ref() {
                Some(conn) => (conn.backlog.len(), conn.id),
                None => continue,
            };
            tcp_m.writer_backlog.record(backlog as u64);
            watermark = watermark.max(backlog);
            let mut entry = (backlog, conn_id);
            for slot in top.iter_mut() {
                if entry.0 > slot.0 {
                    std::mem::swap(slot, &mut entry);
                }
            }
            if backlog >= cfg.queue_capacity {
                match cfg.backpressure {
                    Backpressure::DropNewest => {
                        stats.dropped += 1;
                        stats.max_queue = stats.max_queue.max(backlog);
                    }
                    Backpressure::Disconnect | Backpressure::Block => {
                        if let Some(id) = evict_slot(poll, slab, pending_free, live, idx) {
                            stats.disconnected += 1;
                            event(EventKind::Disconnect, id, 1);
                        }
                    }
                }
            } else if let Some(conn) = slab[idx].as_mut() {
                conn.backlog.push_back(Arc::clone(wire));
                stats.delivered += 1;
                stats.bytes += wire.len() as u64;
                stats.max_queue = stats.max_queue.max(backlog + 1);
            }
        }
        stage_m.conn_lag_watermark.set_max(watermark as i64);
        for (rank, (lag, conn_id)) in top.iter().enumerate() {
            slow_lag[rank].set(*lag as i64);
            slow_conn[rank].set(*conn_id as i64);
        }
    }

    /// Flushes every unarmed, non-empty backlog (armed connections wait
    /// for their writable event instead of burning a doomed syscall).
    /// Returns whether any backlog bytes remain anywhere.
    fn flush_ready(&mut self, stats: &mut DeliveryStats) -> bool {
        let Self {
            poll,
            slab,
            pending_free,
            live,
            cfg,
            ..
        } = self;
        let mut remaining = false;
        for idx in 0..slab.len() {
            let mut dead = false;
            if let Some(conn) = slab[idx].as_mut() {
                if !conn.backlog.is_empty() && !conn.armed {
                    dead = flush_conn(poll, conn, idx, cfg.max_coalesce).is_err();
                }
                if !dead {
                    remaining |= !conn.backlog.is_empty();
                }
            }
            if dead {
                if let Some(id) = evict_slot(poll, slab, pending_free, live, idx) {
                    stats.disconnected += 1;
                    event(EventKind::Disconnect, id, 0);
                }
            }
        }
        remaining
    }
}

impl Transport for EventedTcpTransport {
    fn broadcast(&mut self, frame: Frame) -> DeliveryStats {
        let mut stats = DeliveryStats::default();
        self.pump(Some(Duration::ZERO), &mut stats);
        self.channel_frames.get(frame.channel).inc();
        if self.faults.active() {
            let seq = frame.seq;
            let mut out: Vec<InjectedFrame> = Vec::new();
            match self.faults.injector_mut(frame.channel) {
                Some(inj) => {
                    // Per-client kills first, exactly as on the threaded
                    // path: a killed connection misses even this slot.
                    for idx in 0..self.slab.len() {
                        let Some(conn) = self.slab[idx].as_ref() else {
                            continue;
                        };
                        if inj.plan().kills_client(seq, conn.id) {
                            inj.record_kill(seq, conn.id);
                            if let Some(id) = evict_slot(
                                &self.poll,
                                &mut self.slab,
                                &mut self.pending_free,
                                &mut self.live,
                                idx,
                            ) {
                                stats.disconnected += 1;
                                event(EventKind::Disconnect, id, 1);
                            }
                        }
                    }
                    // Channel faults next: erase, corrupt, delay/reorder.
                    inj.step(frame, &mut out);
                }
                // This channel runs clean under the installed plans.
                None => out.push(InjectedFrame {
                    frame,
                    corrupt: None,
                }),
            }
            if self.live > 0 {
                for injected in out {
                    let wire = match injected.corrupt {
                        Some(entropy) => encode_corrupted(&injected.frame, entropy),
                        None => injected.frame.encode_shared(),
                    };
                    self.enqueue_all(&wire, &mut stats);
                }
            }
        } else if self.live > 0 {
            // Encode once per slot; every backlog shares the bytes.
            let wire = frame.encode_shared();
            self.enqueue_all(&wire, &mut stats);
        }
        self.since_flush += 1;
        if self.since_flush >= self.flush_every {
            self.since_flush = 0;
            self.flush_ready(&mut stats);
        }
        let m = crate::obs::tcp();
        m.bytes.add(stats.bytes);
        m.frames_dropped.add(stats.dropped);
        m.disconnects.add(stats.disconnected);
        m.connections.set(self.live as i64);
        crate::obs::evented().slab_occupancy.set(self.live as i64);
        stats
    }

    fn active_clients(&self) -> usize {
        self.live
    }

    fn take_requests(&mut self, out: &mut Vec<PullRequest>) {
        // Run one event-loop turn first so requests written since the
        // last broadcast are parsed before the engine arbitrates.
        let mut stats = DeliveryStats::default();
        self.pump(Some(Duration::ZERO), &mut stats);
        out.append(&mut self.pending_requests);
    }

    fn set_hello(&mut self, hello: Option<Frame>) {
        self.hello = hello.map(|f| f.encode_shared());
    }

    fn finish(&mut self) -> DeliveryStats {
        let mut stats = DeliveryStats::default();
        // Drain what the sockets will take, bounded by the same timeout
        // that caps a threaded writer: a peer that stopped reading cannot
        // wedge shutdown.
        let grace = self.cfg.write_timeout.unwrap_or(Duration::from_secs(5));
        let deadline = Instant::now() + grace;
        loop {
            let mut remaining = self.flush_ready(&mut stats);
            remaining |= self.slab.iter().flatten().any(|c| !c.backlog.is_empty());
            if !remaining || Instant::now() >= deadline {
                break;
            }
            // Armed connections drain via their writable events.
            self.pump(Some(Duration::from_millis(1)), &mut stats);
        }
        for slot in &mut self.slab {
            if let Some(conn) = slot.take() {
                let _ = self.poll.deregister(&conn.stream);
                let _ = conn.stream.shutdown(Shutdown::Both);
            }
        }
        self.slab.clear();
        self.free.clear();
        self.pending_free.clear();
        self.live = 0;
        crate::obs::tcp().connections.set(0);
        crate::obs::evented().slab_occupancy.set(0);
        // Delivery was accounted per broadcast; only terminal
        // disconnections surface here.
        stats
    }
}

impl Drop for EventedTcpTransport {
    fn drop(&mut self) {
        self.finish();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tcp_threaded::TcpFrameReader;
    use crate::transport::PagePayloads;
    use bdisk_sched::{PageId, Slot};

    fn cfg() -> TcpTransportConfig {
        TcpTransportConfig::default()
    }

    #[test]
    fn loopback_round_trip_carries_payloads() {
        let mut transport = EventedTcpTransport::bind(cfg()).unwrap();
        let addr = transport.local_addr();
        let reader = std::thread::spawn(move || {
            let mut reader = TcpFrameReader::connect(addr).unwrap();
            let mut frames = Vec::new();
            while let Some(frame) = reader.recv().unwrap() {
                frames.push(frame);
            }
            frames
        });
        assert!(transport.wait_for_clients(1, Duration::from_secs(5)));
        let payloads = PagePayloads::generate(10, 16);
        for seq in 0..10u64 {
            let stats = transport.broadcast(payloads.frame(seq, Slot::Page(PageId(seq as u32))));
            assert_eq!(stats.delivered, 1);
            assert_eq!(stats.dropped, 0);
            assert!(stats.bytes > 0);
        }
        transport.finish();
        let frames = reader.join().unwrap();
        assert_eq!(frames.len(), 10);
        for (i, f) in frames.iter().enumerate() {
            assert_eq!(f.seq, i as u64);
            assert_eq!(f.slot, Slot::Page(PageId(i as u32)));
            let expect = payloads.frame(i as u64, Slot::Page(PageId(i as u32)));
            assert_eq!(f.payload, expect.payload, "payload survived the wire");
        }
    }

    #[test]
    fn closed_peer_detected() {
        let mut transport = EventedTcpTransport::bind(cfg()).unwrap();
        let addr = transport.local_addr();
        let reader = TcpFrameReader::connect(addr).unwrap();
        assert!(transport.wait_for_clients(1, Duration::from_secs(5)));
        drop(reader);
        // Keep broadcasting until the hangup event surfaces.
        let deadline = Instant::now() + Duration::from_secs(5);
        let mut disconnected = 0;
        while disconnected == 0 && Instant::now() < deadline {
            disconnected = transport
                .broadcast(Frame::bare(0, Slot::Empty))
                .disconnected;
        }
        assert_eq!(disconnected, 1);
        assert_eq!(transport.active_clients(), 0);
    }

    #[test]
    fn wait_for_clients_times_out_promptly() {
        let mut transport = EventedTcpTransport::bind(cfg()).unwrap();
        let timeout = Duration::from_millis(100);
        let start = Instant::now();
        assert!(!transport.wait_for_clients(1, timeout));
        let elapsed = start.elapsed();
        assert!(elapsed >= timeout, "returned before the deadline");
        assert!(
            elapsed < timeout + Duration::from_millis(100),
            "timeout overshot: {elapsed:?}"
        );
    }

    #[test]
    fn corrupt_frames_are_skipped_and_counted() {
        let mut transport = EventedTcpTransport::bind(cfg()).unwrap();
        let addr = transport.local_addr();
        transport.set_fault_plan(FaultPlan {
            seed: 3,
            corruption: 1.0,
            ..FaultPlan::none()
        });
        let reader = std::thread::spawn(move || {
            let mut reader = TcpFrameReader::connect(addr).unwrap();
            let mut frames = Vec::new();
            while let Some(frame) = reader.recv().unwrap() {
                frames.push(frame);
            }
            (frames, reader.corrupt_frames())
        });
        assert!(transport.wait_for_clients(1, Duration::from_secs(5)));
        let payloads = PagePayloads::generate(4, 32);
        for seq in 0..6u64 {
            transport.broadcast(payloads.frame(seq, Slot::Page(PageId(seq as u32 % 4))));
        }
        transport.finish();
        let (frames, corrupt) = reader.join().unwrap();
        assert!(frames.is_empty(), "every frame was damaged: {frames:?}");
        assert_eq!(corrupt, 6, "all six damaged frames counted");
    }

    #[test]
    fn drop_newest_applies_when_backlog_and_socket_fill() {
        let mut transport = EventedTcpTransport::bind(TcpTransportConfig {
            queue_capacity: 2,
            write_timeout: Some(Duration::from_millis(100)),
            ..TcpTransportConfig::default()
        })
        .unwrap();
        let addr = transport.local_addr();
        // A tuner that connects and never reads: the kernel buffers fill,
        // flushes hit WouldBlock, the 2-frame backlog fills, and newest
        // frames start dropping.
        let stalled = TcpFrameReader::connect(addr).unwrap();
        assert!(transport.wait_for_clients(1, Duration::from_secs(5)));
        let payloads = PagePayloads::generate(2, 256 * 1024);
        let mut dropped = 0;
        for seq in 0..64u64 {
            dropped += transport
                .broadcast(payloads.frame(seq, Slot::Page(PageId(seq as u32 % 2))))
                .dropped;
        }
        assert!(dropped > 0, "stalled consumer never hit DropNewest");
        assert_eq!(transport.active_clients(), 1, "DropNewest never evicts");
        drop(transport);
        drop(stalled);
    }

    #[test]
    fn disconnect_policy_evicts_slow_consumer() {
        let mut transport = EventedTcpTransport::bind(TcpTransportConfig {
            queue_capacity: 2,
            backpressure: Backpressure::Disconnect,
            write_timeout: Some(Duration::from_millis(100)),
            ..TcpTransportConfig::default()
        })
        .unwrap();
        let addr = transport.local_addr();
        let stalled = TcpFrameReader::connect(addr).unwrap();
        assert!(transport.wait_for_clients(1, Duration::from_secs(5)));
        let payloads = PagePayloads::generate(2, 256 * 1024);
        let mut disconnected = 0;
        for seq in 0..64u64 {
            disconnected += transport
                .broadcast(payloads.frame(seq, Slot::Page(PageId(seq as u32 % 2))))
                .disconnected;
        }
        assert_eq!(disconnected, 1, "slow consumer evicted exactly once");
        assert_eq!(transport.active_clients(), 0);
        drop(stalled);
    }

    #[test]
    #[should_panic(expected = "cannot block")]
    fn block_backpressure_rejected_at_bind() {
        let _ = EventedTcpTransport::bind(TcpTransportConfig {
            backpressure: Backpressure::Block,
            ..TcpTransportConfig::default()
        });
    }

    #[test]
    fn upstream_requests_reach_take_requests() {
        let mut transport = EventedTcpTransport::bind(cfg()).unwrap();
        let addr = transport.local_addr();
        let mut reader = TcpFrameReader::connect(addr).unwrap();
        assert!(transport.wait_for_clients(1, Duration::from_secs(5)));
        reader.send_request(7, PageId(42), 100).unwrap();
        reader.send_request(7, PageId(43), 101).unwrap();
        let mut out = Vec::new();
        let deadline = Instant::now() + Duration::from_secs(5);
        while out.len() < 2 && Instant::now() < deadline {
            transport.take_requests(&mut out);
        }
        assert_eq!(
            out,
            vec![
                PullRequest {
                    user: 7,
                    page: PageId(42),
                    min_seq: 100
                },
                PullRequest {
                    user: 7,
                    page: PageId(43),
                    min_seq: 101
                },
            ]
        );
        assert!(transport.upstream_bytes() >= 48);
        assert_eq!(transport.upstream_rejected_bytes(), 0);
    }

    /// The legacy-client pin: a push-only tuner that writes garbage
    /// upstream keeps its broadcast subscription — the bytes are counted
    /// and rejected, the connection lives, and frames still flow down.
    #[test]
    fn garbage_upstream_bytes_never_kill_the_connection() {
        let mut transport = EventedTcpTransport::bind(cfg()).unwrap();
        let addr = transport.local_addr();
        let mut legacy = std::net::TcpStream::connect(addr).unwrap();
        assert!(transport.wait_for_clients(1, Duration::from_secs(5)));
        legacy.write_all(b"GET / HTTP/1.1\r\n\r\n").unwrap();
        legacy.write_all(&[0xFF; 1000]).unwrap();
        let mut out = Vec::new();
        let deadline = Instant::now() + Duration::from_secs(5);
        while transport.upstream_bytes() < 1018 && Instant::now() < deadline {
            transport.take_requests(&mut out);
        }
        assert!(out.is_empty(), "garbage parsed as requests: {out:?}");
        assert_eq!(transport.active_clients(), 1, "garbage killed the conn");
        assert!(transport.upstream_rejected_bytes() > 0);
        // The broadcast still reaches the noisy client.
        let payloads = PagePayloads::generate(2, 16);
        transport.broadcast(payloads.frame(0, Slot::Page(PageId(1))));
        transport.finish();
        let mut reader = TcpFrameReader::from_stream(legacy).unwrap();
        let frame = reader.recv().unwrap().expect("frame delivered");
        assert_eq!(frame.slot, Slot::Page(PageId(1)));
    }

    #[test]
    fn slab_slots_are_recycled_across_reconnects() {
        let mut transport = EventedTcpTransport::bind(cfg()).unwrap();
        let addr = transport.local_addr();
        for _round in 0..3 {
            let r1 = TcpFrameReader::connect(addr).unwrap();
            let r2 = TcpFrameReader::connect(addr).unwrap();
            assert!(transport.wait_for_clients(2, Duration::from_secs(5)));
            drop(r1);
            drop(r2);
            let deadline = Instant::now() + Duration::from_secs(5);
            while transport.active_clients() > 0 && Instant::now() < deadline {
                transport.broadcast(Frame::bare(0, Slot::Empty));
            }
            assert_eq!(transport.active_clients(), 0);
        }
        // Two live connections at a time, ever: the slab never needed more
        // than a handful of slots (freed indices are recycled, one pump
        // late).
        assert!(
            transport.slab.len() <= 4,
            "slab grew to {} slots for 2 concurrent clients",
            transport.slab.len()
        );
    }
}
