//! The upstream (client→server) request wire format and its hardened
//! parser.
//!
//! Downstream frames are length-prefixed and trusted to be well-formed
//! because the broker writes them; upstream bytes come from arbitrary
//! clients and get the opposite treatment. A request is a fixed-size
//! 24-byte magic-framed record:
//!
//! ```text
//! [u32 magic "BDRQ"] [u32 user] [u32 page] [u64 min_seq] [u32 crc]
//! ```
//!
//! all little-endian, where `crc` is CRC-32/ISO-HDLC over the first 20
//! bytes. The fixed size means no attacker-controlled length field to
//! cap (the lesson of `MAX_FRAME_LEN` on the downstream path applied by
//! construction), and the magic + CRC let the parser resynchronize after
//! garbage: scan forward one byte at a time until a record validates.
//!
//! The parser **never** errors and never kills a connection: a legacy
//! push-only client that writes stray bytes upstream — or an adversarial
//! one that writes 4 KiB of noise — just has those bytes counted and
//! skipped. The reassembly buffer is capped at [`MAX_BUFFER`]; on
//! overflow everything but the last (possibly partial) record is
//! discarded, bounding memory per connection.

use crate::faults::{crc32_finish, crc32_init, crc32_update};
use crate::transport::PullRequest;
use bdisk_sched::PageId;

/// Leading magic of an upstream request record.
pub const REQUEST_MAGIC: [u8; 4] = *b"BDRQ";

/// Total bytes of an upstream request record.
pub const REQUEST_LEN: usize = 24;

/// Reassembly-buffer cap per connection. Anything beyond one ordinary
/// socket read of well-formed records fits; sustained garbage is dropped
/// rather than buffered.
pub const MAX_BUFFER: usize = 4096;

/// Serializes one upstream request record.
pub fn encode_request(user: u32, page: PageId, min_seq: u64) -> [u8; REQUEST_LEN] {
    let mut buf = [0u8; REQUEST_LEN];
    buf[0..4].copy_from_slice(&REQUEST_MAGIC);
    buf[4..8].copy_from_slice(&user.to_le_bytes());
    buf[8..12].copy_from_slice(&page.0.to_le_bytes());
    buf[12..20].copy_from_slice(&min_seq.to_le_bytes());
    let crc = crc32_finish(crc32_update(crc32_init(), &buf[..20]));
    buf[20..24].copy_from_slice(&crc.to_le_bytes());
    buf
}

/// Incremental, resynchronizing parser for one connection's upstream byte
/// stream. Feed it whatever the socket drained; it emits every valid
/// [`PullRequest`] and silently skips everything else.
///
/// Allocation-lazy: a connection that never writes upstream (every
/// push-only client) costs an empty `Vec` and nothing more, preserving
/// the evented transport's zero-allocation steady state.
#[derive(Debug, Default)]
pub struct UpstreamParser {
    buf: Vec<u8>,
    rejected_bytes: u64,
}

impl UpstreamParser {
    /// A fresh parser with an empty reassembly buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bytes skipped so far because they were not part of any valid
    /// record (garbage, corruption, or overflow discards).
    pub fn rejected_bytes(&self) -> u64 {
        self.rejected_bytes
    }

    /// Consumes `bytes` from the connection, appending every complete
    /// valid record to `out`.
    pub fn feed(&mut self, bytes: &[u8], out: &mut Vec<PullRequest>) {
        if bytes.is_empty() {
            return;
        }
        self.buf.extend_from_slice(bytes);
        // Parse greedily: at each position either a whole valid record
        // starts (consume it) or we skip one byte and rescan — the
        // resync that makes interleaved garbage survivable.
        let mut pos = 0;
        while self.buf.len() - pos >= REQUEST_LEN {
            let rec = &self.buf[pos..pos + REQUEST_LEN];
            if rec[0..4] == REQUEST_MAGIC {
                let crc = crc32_finish(crc32_update(crc32_init(), &rec[..20]));
                if crc == u32::from_le_bytes(rec[20..24].try_into().unwrap()) {
                    out.push(PullRequest {
                        user: u32::from_le_bytes(rec[4..8].try_into().unwrap()),
                        page: PageId(u32::from_le_bytes(rec[8..12].try_into().unwrap())),
                        min_seq: u64::from_le_bytes(rec[12..20].try_into().unwrap()),
                    });
                    pos += REQUEST_LEN;
                    continue;
                }
            }
            pos += 1;
            self.rejected_bytes += 1;
        }
        self.buf.drain(..pos);
        // Cap the tail: garbage that never resynchronizes must not grow
        // the buffer without bound. Keep only the suffix that could
        // still be the prefix of a valid record.
        if self.buf.len() > MAX_BUFFER {
            let keep = REQUEST_LEN - 1;
            let drop = self.buf.len() - keep;
            self.rejected_bytes += drop as u64;
            self.buf.drain(..drop);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn feed_all(parser: &mut UpstreamParser, bytes: &[u8], chunk: usize) -> Vec<PullRequest> {
        let mut out = Vec::new();
        for c in bytes.chunks(chunk.max(1)) {
            parser.feed(c, &mut out);
        }
        out
    }

    #[test]
    fn single_record_round_trips() {
        let rec = encode_request(7, PageId(42), 1234);
        let mut p = UpstreamParser::new();
        let out = feed_all(&mut p, &rec, REQUEST_LEN);
        assert_eq!(
            out,
            vec![PullRequest {
                user: 7,
                page: PageId(42),
                min_seq: 1234
            }]
        );
        assert_eq!(p.rejected_bytes(), 0);
    }

    #[test]
    fn records_survive_any_split_boundary() {
        let mut bytes = Vec::new();
        for i in 0..5u32 {
            bytes.extend_from_slice(&encode_request(i, PageId(i * 3), i as u64 * 100));
        }
        for chunk in 1..=bytes.len() {
            let mut p = UpstreamParser::new();
            let out = feed_all(&mut p, &bytes, chunk);
            assert_eq!(out.len(), 5, "chunk size {chunk}");
            assert_eq!(out[4].page, PageId(12));
            assert_eq!(p.rejected_bytes(), 0);
        }
    }

    #[test]
    fn garbage_between_records_is_skipped_and_counted() {
        let mut bytes = b"hello broker, got any pages?".to_vec();
        bytes.extend_from_slice(&encode_request(1, PageId(9), 50));
        bytes.extend_from_slice(&[0xFF; 31]);
        bytes.extend_from_slice(&encode_request(2, PageId(10), 60));
        let mut p = UpstreamParser::new();
        let out = feed_all(&mut p, &bytes, 7);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].page, PageId(9));
        assert_eq!(out[1].page, PageId(10));
        assert_eq!(p.rejected_bytes(), 28 + 31);
    }

    #[test]
    fn corrupt_record_rejected_then_resyncs() {
        let mut rec = encode_request(3, PageId(5), 70).to_vec();
        rec[13] ^= 0x40; // damage min_seq → CRC mismatch
        rec.extend_from_slice(&encode_request(4, PageId(6), 80));
        let mut p = UpstreamParser::new();
        let out = feed_all(&mut p, &rec, 5);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].user, 4);
        assert_eq!(p.rejected_bytes(), REQUEST_LEN as u64);
    }

    #[test]
    fn every_single_bit_corruption_is_rejected() {
        let rec = encode_request(11, PageId(22), 333);
        for bit in 0..REQUEST_LEN * 8 {
            let mut damaged = rec;
            damaged[bit / 8] ^= 1 << (bit % 8);
            let mut p = UpstreamParser::new();
            let mut out = Vec::new();
            p.feed(&damaged, &mut out);
            assert!(out.is_empty(), "bit {bit} flip went undetected");
        }
    }

    #[test]
    fn buffer_is_capped_under_sustained_garbage() {
        let mut p = UpstreamParser::new();
        let mut out = Vec::new();
        let junk = vec![0x42u8; 1024]; // 'B' bytes: worst case, magic-ish
        for _ in 0..64 {
            p.feed(&junk, &mut out);
            assert!(p.buf.len() <= MAX_BUFFER, "buffer grew past the cap");
        }
        assert!(out.is_empty());
        assert!(p.rejected_bytes() > 60 * 1024);
        // The parser still works after the flood.
        p.feed(&encode_request(1, PageId(2), 3), &mut out);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn adversarial_fuzz_never_panics_and_recovers_planted_records() {
        let mut rng = StdRng::seed_from_u64(0xB0AD_CA57);
        for round in 0..50 {
            let mut bytes = Vec::new();
            let mut planted = 0u32;
            while bytes.len() < 8192 {
                if rng.random_range(0u32..10) < 3 {
                    bytes.extend_from_slice(&encode_request(
                        planted,
                        PageId(rng.random_range(0..1000)),
                        rng.random_range(0..1_000_000),
                    ));
                    planted += 1;
                } else {
                    let n = rng.random_range(1usize..64);
                    // Bias garbage toward magic bytes to stress resync.
                    for _ in 0..n {
                        bytes.push(if rng.random_range(0u32..2) == 0 {
                            REQUEST_MAGIC[rng.random_range(0usize..4)]
                        } else {
                            rng.random()
                        });
                    }
                }
            }
            let mut p = UpstreamParser::new();
            let out = feed_all(&mut p, &bytes, rng.random_range(1..200));
            // Every planted record is recovered, in order. (Random
            // garbage forging a valid CRC'd record is a ~2^-32 event per
            // offset; the seeds here are fixed, so this is deterministic.)
            let users: Vec<u32> = out.iter().map(|r| r.user).collect();
            assert_eq!(users, (0..planted).collect::<Vec<_>>(), "round {round}");
        }
    }
}
