//! Deterministic fault injection for the broadcast path.
//!
//! The paper's broadcast medium is unreliable by nature — satellite and
//! wireless downlinks drop and corrupt frames — and the periodic program
//! *is* the recovery mechanism: a client that misses page `p` simply waits
//! one period for its next broadcast. This module makes that failure mode
//! first-class and, crucially, **reproducible**:
//!
//! * a [`FaultPlan`] is a seeded *schedule* of faults, not a random
//!   process: every decision is a pure hash of `(seed, fault kind, slot,
//!   client)`, so the same plan replays the identical fault sequence on
//!   every run, on every transport, in any evaluation order;
//! * erasure thresholds are *coupled* across loss rates — for a fixed seed,
//!   the slots erased at rate `r1` are a subset of those erased at any
//!   `r2 > r1` — so degradation sweeps are monotone by construction, not by
//!   statistical luck;
//! * a [`FaultInjector`] is the single choke point both transports drive:
//!   the in-memory bus and the TCP writer consult the same per-slot
//!   [`ChannelFault`] decisions, so a client sees the same gaps whichever
//!   medium carries the broadcast.
//!
//! Fault taxonomy (per the erasure-broadcast literature):
//!
//! | fault      | scope      | models                                     |
//! |------------|------------|--------------------------------------------|
//! | erase      | per slot   | frame lost on the channel                  |
//! | corrupt    | per slot   | bit flips in flight (CRC-detected)         |
//! | delay      | per slot   | late delivery / reorder by a few slots     |
//! | kill       | per client | receiver connection lost (TCP reconnects)  |
//! | overrun    | per slot   | server misses its slot deadline            |

use std::sync::OnceLock;

use bdisk_obs::journal::{event, EventKind};

use crate::transport::Frame;

/// SplitMix64 finalizer: a full-avalanche 64-bit mix.
#[inline]
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A tiny seeded generator for client-side jitter (reconnect backoff).
/// SplitMix64 stream; deterministic per seed, no external dependency.
#[derive(Debug, Clone)]
pub struct SplitMix {
    state: u64,
}

impl SplitMix {
    /// A generator seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// The next 64 uniformly mixed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        mix64(self.state)
    }

    /// A uniform draw in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Domain tags keeping the per-kind hash streams independent: the erasure
/// decision at slot `s` never changes when the corruption rate moves.
mod domain {
    pub const ERASE: u64 = 0x45;
    pub const CORRUPT: u64 = 0xC0;
    pub const DELAY: u64 = 0xDE;
    pub const KILL: u64 = 0x4B;
    pub const OVERRUN: u64 = 0x0E;
    pub const ENTROPY: u64 = 0xEE;
}

/// What the channel does to the frame of one broadcast slot. Decided once
/// per slot (channel-level, identical for every receiver), by priority
/// erase > corrupt > delay.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChannelFault {
    /// The frame goes out intact.
    Deliver,
    /// The frame is lost entirely.
    Erase,
    /// The frame is delivered with bit damage; `entropy` seeds which bit
    /// flips (the transport reduces it modulo the wire length).
    Corrupt {
        /// Raw 64-bit entropy for choosing the damaged bit.
        entropy: u64,
    },
    /// The frame arrives `slots` slots late (after newer frames: reorder).
    Delay {
        /// How many slots late the frame is delivered (>= 1).
        slots: u64,
    },
}

impl ChannelFault {
    /// Stable code for journal events (`b` operand of `FaultInjected`).
    pub fn code(self) -> u64 {
        match self {
            ChannelFault::Deliver => u64::MAX,
            ChannelFault::Erase => 0,
            ChannelFault::Corrupt { .. } => 1,
            ChannelFault::Delay { .. } => 2,
        }
    }
}

/// Journal code for a per-client connection kill.
pub const FAULT_CODE_KILL: u64 = 3;
/// Journal code for an engine slot-deadline overrun.
pub const FAULT_CODE_OVERRUN: u64 = 4;

/// A seeded, reproducible schedule of injectable faults.
///
/// All rates are probabilities in `[0, 1]` evaluated independently per
/// slot (or per `(slot, client)` for `kill`). [`FaultPlan::none`] is the
/// do-nothing plan; transports skip the fault path entirely when
/// [`FaultPlan::is_none`] holds, so a zero plan is bit-identical to no
/// plan at all (`tests/fault_properties.rs` pins this).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Seed of the fault schedule; same seed, same faults, every run.
    pub seed: u64,
    /// Per-slot probability the frame is erased (dropped on the channel).
    pub erasure: f64,
    /// Per-slot probability the frame is bit-corrupted in flight.
    pub corruption: f64,
    /// Per-slot probability the frame is delayed (reordered).
    pub delay: f64,
    /// Upper bound on the delay, in slots (draws land in `1..=max`).
    pub max_delay_slots: u64,
    /// Per-slot, per-client probability the client's connection is killed.
    pub kill: f64,
    /// Per-slot probability the engine oversleeps its slot deadline.
    pub overrun: f64,
    /// Deterministic workload-drift cadence: every this-many slots the
    /// client fleet rotates its hot set one phase (0 = no drift). Not a
    /// random fault — part of the schedule so adaptive and control runs
    /// drift identically.
    pub drift_every_slots: u64,
    /// Deterministic broker crash: the engine stops dead at this slot seq
    /// (0 = never), leaving its checkpoint for a restarted engine to
    /// resume from.
    pub broker_kill_slot: u64,
}

impl FaultPlan {
    /// The empty plan: no faults, ever.
    pub fn none() -> Self {
        Self {
            seed: 0,
            erasure: 0.0,
            corruption: 0.0,
            delay: 0.0,
            max_delay_slots: 4,
            kill: 0.0,
            overrun: 0.0,
            drift_every_slots: 0,
            broker_kill_slot: 0,
        }
    }

    /// A pure erasure channel: frames are lost at `rate`, nothing else.
    pub fn erasure_only(seed: u64, rate: f64) -> Self {
        Self {
            seed,
            erasure: rate,
            ..Self::none()
        }
    }

    /// True when every fault rate is zero — the fast path that leaves both
    /// transports bit-identical to having no plan at all.
    pub fn is_none(&self) -> bool {
        self.erasure == 0.0
            && self.corruption == 0.0
            && self.delay == 0.0
            && self.kill == 0.0
            && self.overrun == 0.0
    }

    /// Panics if any rate is outside `[0, 1]` or the delay bound is zero.
    pub fn validate(&self) {
        for (name, rate) in [
            ("erasure", self.erasure),
            ("corruption", self.corruption),
            ("delay", self.delay),
            ("kill", self.kill),
            ("overrun", self.overrun),
        ] {
            assert!(
                (0.0..=1.0).contains(&rate),
                "fault rate {name}={rate} outside [0, 1]"
            );
        }
        assert!(self.max_delay_slots >= 1, "max_delay_slots must be >= 1");
    }

    /// Uniform `[0, 1)` draw for one `(domain, slot, extra)` decision.
    #[inline]
    fn unit(&self, dom: u64, seq: u64, extra: u64) -> f64 {
        let h = mix64(self.seed ^ mix64(dom) ^ mix64(seq).rotate_left(17) ^ mix64(extra));
        (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// The channel's decision for the frame of slot `seq` on broadcast
    /// channel 0 — shorthand for [`FaultPlan::channel_fault_on`], kept
    /// because single-channel deployments are the common case.
    pub fn channel_fault(&self, seq: u64) -> ChannelFault {
        self.channel_fault_on(seq, 0)
    }

    /// The decision for the frame of slot `seq` on broadcast channel
    /// `channel`. Pure in `(self, seq, channel)`: both transports, and any
    /// replay, get the same answer. Because each kind draws from its own
    /// hash stream and fires when the draw falls below the rate, raising
    /// one rate only *adds* faults — it never moves or removes the faults
    /// of a lower rate (coupled sampling). Channel 0 draws are bit-identical
    /// to the pre-multi-channel schedule (the channel term vanishes), so
    /// single-channel fault replays are stable across versions.
    pub fn channel_fault_on(&self, seq: u64, channel: u16) -> ChannelFault {
        // Zero for channel 0 — keeps the legacy single-channel stream.
        let ch = (channel as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        if self.erasure > 0.0 && self.unit(domain::ERASE, seq, ch) < self.erasure {
            return ChannelFault::Erase;
        }
        if self.corruption > 0.0 && self.unit(domain::CORRUPT, seq, ch) < self.corruption {
            return ChannelFault::Corrupt {
                entropy: mix64(self.seed ^ mix64(domain::ENTROPY) ^ seq ^ ch),
            };
        }
        if self.delay > 0.0 && self.unit(domain::DELAY, seq, ch) < self.delay {
            let span = self.max_delay_slots.max(1);
            let slots = 1 + mix64(self.seed ^ mix64(domain::DELAY) ^ mix64(seq) ^ ch) % span;
            return ChannelFault::Delay { slots };
        }
        ChannelFault::Deliver
    }

    /// True when client `client`'s connection is killed at slot `seq`.
    pub fn kills_client(&self, seq: u64, client: u64) -> bool {
        self.kill > 0.0 && self.unit(domain::KILL, seq, client) < self.kill
    }

    /// True when the engine oversleeps the deadline of slot `seq`.
    pub fn overrun_at(&self, seq: u64) -> bool {
        self.overrun > 0.0 && self.unit(domain::OVERRUN, seq, 0) < self.overrun
    }
}

/// Running totals of faults an injector has applied.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCounts {
    /// Frames erased on the channel.
    pub erased: u64,
    /// Frames delivered with injected bit damage.
    pub corrupted: u64,
    /// Frames delivered late (reordered).
    pub delayed: u64,
    /// Client connections killed.
    pub killed: u64,
    /// Engine slot deadlines overrun.
    pub overruns: u64,
}

impl FaultCounts {
    /// Total injected faults of every kind.
    pub fn total(&self) -> u64 {
        self.erased + self.corrupted + self.delayed + self.killed + self.overruns
    }

    /// Adds another injector's totals into this one (aggregating across
    /// channels or transports).
    pub fn absorb(&mut self, other: FaultCounts) {
        self.erased += other.erased;
        self.corrupted += other.corrupted;
        self.delayed += other.delayed;
        self.killed += other.killed;
        self.overruns += other.overruns;
    }
}

/// One slot's worth of injector output: the frame plus, when the channel
/// corrupted it, the entropy selecting the damaged bit.
#[derive(Debug, Clone)]
pub struct InjectedFrame {
    /// The frame to put on the wire (payload intact; damage is applied at
    /// the transport's encoding, where a CRC can catch it).
    pub frame: Frame,
    /// `Some(entropy)` when the channel corrupted this frame in flight.
    pub corrupt: Option<u64>,
}

/// The choke point both transports drive: applies a [`FaultPlan`]'s
/// channel faults to the slot stream, holding delayed frames until due.
///
/// The injector is deliberately transport-agnostic: it decides *what*
/// happens to each slot's frame; the transport decides what that means on
/// its medium (the TCP writer flips a real bit under the CRC, the bus —
/// which has no wire form — models the receiver's CRC discard by
/// withholding the frame, producing the same client-visible gap).
pub struct FaultInjector {
    plan: FaultPlan,
    /// Broadcast channel this injector's decisions are keyed to.
    channel: u16,
    /// Per-channel injected-fault counter
    /// (`bd_fault_injected_by_channel_total{channel=...}`).
    by_channel: &'static bdisk_obs::Counter,
    /// Frames the channel is holding back: `(due_seq, frame)`.
    delayed: Vec<(u64, Frame)>,
    /// Faults applied so far.
    pub counts: FaultCounts,
}

impl FaultInjector {
    /// An injector executing `plan` on broadcast channel 0 (validated).
    pub fn new(plan: FaultPlan) -> Self {
        Self::for_channel(plan, 0)
    }

    /// An injector executing `plan` keyed to broadcast channel `channel`:
    /// every slot decision hashes the channel in, so channels with the same
    /// plan still fault independently (and channel 0 replays the legacy
    /// single-channel schedule bit-for-bit).
    pub fn for_channel(plan: FaultPlan, channel: u16) -> Self {
        plan.validate();
        Self {
            plan,
            channel,
            by_channel: crate::obs::fault_channel_counter(channel),
            delayed: Vec::new(),
            counts: FaultCounts::default(),
        }
    }

    /// The plan this injector executes.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// The broadcast channel this injector is keyed to.
    pub fn channel(&self) -> u16 {
        self.channel
    }

    /// Applies the channel fault for slot `frame.seq` and releases any
    /// held frames that are now due, pushing everything the medium should
    /// carry this slot into `out` (possibly nothing: erasure or delay).
    /// Current-slot output precedes newly due held frames, so a delayed
    /// frame always lands *after* newer traffic — a true reorder.
    pub fn step(&mut self, frame: Frame, out: &mut Vec<InjectedFrame>) {
        let seq = frame.seq;
        let fault = self.plan.channel_fault_on(seq, self.channel);
        match fault {
            ChannelFault::Deliver => out.push(InjectedFrame {
                frame,
                corrupt: None,
            }),
            ChannelFault::Erase => {
                self.counts.erased += 1;
                metrics().erased.inc();
                self.by_channel.inc();
                event(EventKind::FaultInjected, seq, fault.code());
            }
            ChannelFault::Corrupt { entropy } => {
                self.counts.corrupted += 1;
                metrics().corrupted.inc();
                self.by_channel.inc();
                event(EventKind::FaultInjected, seq, fault.code());
                out.push(InjectedFrame {
                    frame,
                    corrupt: Some(entropy),
                });
            }
            ChannelFault::Delay { slots } => {
                self.counts.delayed += 1;
                metrics().delayed.inc();
                self.by_channel.inc();
                event(EventKind::FaultInjected, seq, fault.code());
                self.delayed.push((seq + slots, frame));
            }
        }
        if !self.delayed.is_empty() {
            let mut i = 0;
            while i < self.delayed.len() {
                if self.delayed[i].0 <= seq {
                    let (_, frame) = self.delayed.remove(i);
                    out.push(InjectedFrame {
                        frame,
                        corrupt: None,
                    });
                } else {
                    i += 1;
                }
            }
        }
    }

    /// Records a client kill at slot `seq` (the transport does the actual
    /// eviction; this books the fault).
    pub fn record_kill(&mut self, seq: u64, client: u64) {
        self.counts.killed += 1;
        metrics().killed.inc();
        self.by_channel.inc();
        event(EventKind::FaultInjected, seq, FAULT_CODE_KILL);
        let _ = client;
    }

    /// Records an engine slot-deadline overrun at slot `seq`.
    pub fn record_overrun(&mut self, seq: u64) {
        self.counts.overruns += 1;
        metrics().overruns.inc();
        self.by_channel.inc();
        event(EventKind::FaultInjected, seq, FAULT_CODE_OVERRUN);
    }

    /// Frames the channel is still holding (undelivered delays). The
    /// transport's `finish` may flush or drop them; the broadcast medium
    /// makes no delivery promise for frames in flight at shutdown.
    pub fn in_flight(&self) -> usize {
        self.delayed.len()
    }
}

/// One channel's lazily-resolved fault choke point.
enum ChannelInjector {
    /// No frame seen on this channel yet.
    Unresolved,
    /// Resolved: this channel runs fault-free.
    Clean,
    /// Resolved: this channel's frames pass through an injector.
    Faulty(FaultInjector),
}

/// Routes each broadcast channel's frames to its own [`FaultInjector`]:
/// a default plan applies to every channel, with optional per-channel
/// overrides (real multi-channel media degrade per transponder, not
/// uniformly). Injectors materialize on a channel's first frame and key
/// their decisions to the channel, so channels sharing one plan still
/// fault independently — and channel 0 replays the legacy single-channel
/// schedule bit-for-bit.
pub(crate) struct FaultSwitchboard {
    default_plan: Option<FaultPlan>,
    channel_plans: Vec<Option<FaultPlan>>,
    injectors: Vec<ChannelInjector>,
    /// True when any installed plan can fault; guards the whole fault
    /// path, keeping a zero plan bit- and allocation-identical to none.
    active: bool,
}

impl FaultSwitchboard {
    pub fn new() -> Self {
        Self {
            default_plan: None,
            channel_plans: Vec::new(),
            injectors: Vec::new(),
            active: false,
        }
    }

    /// Installs (or, with [`FaultPlan::is_none`], removes) the default
    /// plan on every channel, clearing per-channel overrides and resetting
    /// materialized injectors.
    pub fn set_default(&mut self, plan: FaultPlan) {
        plan.validate();
        self.default_plan = if plan.is_none() { None } else { Some(plan) };
        self.channel_plans.clear();
        self.injectors.clear();
        self.refresh_active();
    }

    /// Overrides the plan for one channel (other channels keep the
    /// default, or run clean without one).
    pub fn set_channel(&mut self, channel: u16, plan: FaultPlan) {
        plan.validate();
        let idx = channel as usize;
        if self.channel_plans.len() <= idx {
            self.channel_plans.resize(idx + 1, None);
        }
        self.channel_plans[idx] = Some(plan);
        if self.injectors.len() > idx {
            self.injectors[idx] = ChannelInjector::Unresolved;
        }
        self.refresh_active();
    }

    fn refresh_active(&mut self) {
        self.active = self.default_plan.is_some()
            || self
                .channel_plans
                .iter()
                .any(|p| p.map(|p| !p.is_none()).unwrap_or(false));
    }

    /// True when at least one channel has a plan that can fault.
    pub fn active(&self) -> bool {
        self.active
    }

    /// Faults injected so far, summed over every channel's injector.
    pub fn counts(&self) -> FaultCounts {
        let mut total = FaultCounts::default();
        for slot in &self.injectors {
            if let ChannelInjector::Faulty(inj) = slot {
                total.absorb(inj.counts);
            }
        }
        total
    }

    /// The injector for `channel` (materializing it on first use), or
    /// `None` when the channel runs fault-free.
    pub fn injector_mut(&mut self, channel: u16) -> Option<&mut FaultInjector> {
        let idx = channel as usize;
        while self.injectors.len() <= idx {
            self.injectors.push(ChannelInjector::Unresolved);
        }
        if matches!(self.injectors[idx], ChannelInjector::Unresolved) {
            let plan = self
                .channel_plans
                .get(idx)
                .copied()
                .flatten()
                .or(self.default_plan);
            self.injectors[idx] = match plan {
                Some(p) if !p.is_none() => {
                    ChannelInjector::Faulty(FaultInjector::for_channel(p, channel))
                }
                _ => ChannelInjector::Clean,
            };
        }
        match &mut self.injectors[idx] {
            ChannelInjector::Faulty(inj) => Some(inj),
            _ => None,
        }
    }
}

/// Encodes `frame` and flips one bit of the body chosen by `entropy` —
/// never a length-prefix bit, so framing stays intact and the damage is
/// the CRC's to catch. Both TCP transports (threaded and evented) corrupt
/// through this one function, so a fault plan's corruption schedule is
/// byte-identical across them.
pub(crate) fn encode_corrupted(
    frame: &crate::transport::Frame,
    entropy: u64,
) -> std::sync::Arc<[u8]> {
    use crate::transport::LEN_PREFIX;
    let mut bytes = frame.encode();
    let body_bits = (bytes.len() - LEN_PREFIX) * 8;
    let bit = (entropy % body_bits as u64) as usize;
    bytes[LEN_PREFIX + bit / 8] ^= 1 << (bit % 8);
    std::sync::Arc::from(bytes)
}

/// Per-kind injected-fault counters (`bd_fault_injected_total{kind=...}`).
pub(crate) struct FaultMetrics {
    pub erased: &'static bdisk_obs::Counter,
    pub corrupted: &'static bdisk_obs::Counter,
    pub delayed: &'static bdisk_obs::Counter,
    pub killed: &'static bdisk_obs::Counter,
    pub overruns: &'static bdisk_obs::Counter,
}

pub(crate) fn metrics() -> &'static FaultMetrics {
    static M: OnceLock<FaultMetrics> = OnceLock::new();
    const HELP: &str = "Faults injected into the broadcast, by kind";
    M.get_or_init(|| FaultMetrics {
        erased: bdisk_obs::counter_labeled("bd_fault_injected_total", HELP, "kind", "erase"),
        corrupted: bdisk_obs::counter_labeled("bd_fault_injected_total", HELP, "kind", "corrupt"),
        delayed: bdisk_obs::counter_labeled("bd_fault_injected_total", HELP, "kind", "delay"),
        killed: bdisk_obs::counter_labeled("bd_fault_injected_total", HELP, "kind", "kill"),
        overruns: bdisk_obs::counter_labeled("bd_fault_injected_total", HELP, "kind", "overrun"),
    })
}

// ---------------------------------------------------------------------------
// CRC32 (vendored — no external dependency)
// ---------------------------------------------------------------------------

/// The CRC-32/ISO-HDLC table (reflected polynomial 0xEDB88320), built at
/// compile time.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// Initial CRC32 state for the streaming API.
pub fn crc32_init() -> u32 {
    u32::MAX
}

/// Folds `bytes` into a running CRC32 state.
pub fn crc32_update(mut crc: u32, bytes: &[u8]) -> u32 {
    for &b in bytes {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    crc
}

/// Finalizes a streaming CRC32 state into the checksum.
pub fn crc32_finish(crc: u32) -> u32 {
    !crc
}

/// CRC-32/ISO-HDLC (the "CRC32" of zlib, Ethernet, PNG) over `bytes`.
/// Detects every single-bit error and all burst errors up to 32 bits —
/// exactly the damage [`ChannelFault::Corrupt`] injects.
pub fn crc32(bytes: &[u8]) -> u32 {
    crc32_finish(crc32_update(crc32_init(), bytes))
}

#[cfg(test)]
mod tests {
    use super::*;
    use bdisk_sched::Slot;

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard check value of CRC-32/ISO-HDLC.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn same_seed_replays_identical_fault_sequence() {
        let plan = FaultPlan {
            seed: 42,
            erasure: 0.1,
            corruption: 0.05,
            delay: 0.05,
            max_delay_slots: 6,
            kill: 0.01,
            overrun: 0.02,
            drift_every_slots: 0,
            broker_kill_slot: 0,
        };
        for seq in 0..2_000u64 {
            assert_eq!(plan.channel_fault(seq), plan.channel_fault(seq));
            for client in 0..4 {
                assert_eq!(
                    plan.kills_client(seq, client),
                    plan.kills_client(seq, client)
                );
            }
            assert_eq!(plan.overrun_at(seq), plan.overrun_at(seq));
        }
    }

    #[test]
    fn fault_rates_land_near_target() {
        let plan = FaultPlan::erasure_only(7, 0.10);
        let erased = (0..100_000u64)
            .filter(|&s| plan.channel_fault(s) == ChannelFault::Erase)
            .count();
        let rate = erased as f64 / 100_000.0;
        assert!((rate - 0.10).abs() < 0.01, "observed erasure rate {rate}");
    }

    #[test]
    fn erasures_are_coupled_across_rates() {
        // Same seed: every slot erased at 5% is also erased at 20%.
        let low = FaultPlan::erasure_only(99, 0.05);
        let high = FaultPlan::erasure_only(99, 0.20);
        let mut low_count = 0;
        for seq in 0..50_000u64 {
            if low.channel_fault(seq) == ChannelFault::Erase {
                low_count += 1;
                assert_eq!(
                    high.channel_fault(seq),
                    ChannelFault::Erase,
                    "slot {seq} erased at 5% but not at 20%"
                );
            }
        }
        assert!(low_count > 0, "5% of 50k slots must erase something");
    }

    #[test]
    fn none_plan_never_faults() {
        let plan = FaultPlan {
            seed: 123,
            ..FaultPlan::none()
        };
        assert!(plan.is_none());
        for seq in 0..10_000u64 {
            assert_eq!(plan.channel_fault(seq), ChannelFault::Deliver);
            assert!(!plan.kills_client(seq, seq % 7));
            assert!(!plan.overrun_at(seq));
        }
    }

    #[test]
    fn delayed_frames_come_out_late_and_in_due_order() {
        // A plan that (at this seed) delays at least one early slot.
        let plan = FaultPlan {
            seed: 5,
            delay: 0.3,
            max_delay_slots: 3,
            ..FaultPlan::none()
        };
        let mut inj = FaultInjector::new(plan);
        let mut out = Vec::new();
        let mut seen: Vec<u64> = Vec::new();
        for seq in 0..200u64 {
            out.clear();
            inj.step(Frame::bare(seq, Slot::Empty), &mut out);
            for f in &out {
                seen.push(f.frame.seq);
            }
        }
        assert!(inj.counts.delayed > 0, "seed must trigger delays");
        // Every delayed frame eventually appears, after newer traffic.
        let mut sorted = seen.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), seen.len(), "no duplicates");
        assert_ne!(seen, sorted, "delays must reorder the stream");
        // Nothing is lost under pure delay once the horizon passes.
        assert!(seen.len() as u64 + inj.in_flight() as u64 == 200);
    }

    #[test]
    fn splitmix_jitter_is_deterministic() {
        let mut a = SplitMix::new(11);
        let mut b = SplitMix::new(11);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let x = SplitMix::new(1).next_f64();
        assert!((0.0..1.0).contains(&x));
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn invalid_rate_is_rejected() {
        FaultInjector::new(FaultPlan {
            erasure: 1.5,
            ..FaultPlan::none()
        });
    }
}
