//! # bdisk-broker — the live broadcast engine
//!
//! Everything else in this workspace *simulates* a broadcast disk; this
//! crate *runs* one. A [`BroadcastEngine`] walks a
//! [`bdisk_sched::BroadcastProgram`] slot by slot on a wall-clock ticker
//! and fans each page out to N concurrent clients over a pluggable
//! [`Transport`]:
//!
//! * [`InMemoryBus`] — a broadcast bus of per-subscriber frame queues for
//!   in-process experiments (lossless or lossy, see [`Backpressure`]),
//!   with batched flushes and optional worker-pool sharding
//!   ([`BusTuning`]) on the hot path;
//! * [`TcpTransport`] — real `std::net` sockets with length-prefixed page
//!   frames encoded once per slot and shared by every connection,
//!   per-client send buffers with coalesced vectored writes,
//!   slow-consumer detection, and drop-or-disconnect backpressure (one
//!   writer thread per connection — the reference implementation);
//! * [`EventedTcpTransport`] — the same wire format and semantics on a
//!   single-threaded epoll event loop (slab-indexed connections, shared
//!   backlog frames, cursor-resumed partial writes), which is what scales
//!   to 10k+ concurrent tuners on one core. [`TunerFleet`] is the
//!   matching receive side: thousands of CRC-checking tuners drained by
//!   one thread, for fan-out benchmarks.
//!
//! Frames carry real page payloads ([`PagePayloads`], sized by
//! `EngineConfig::page_size` — the paper's `PageSize` knob) as shared
//! `Arc<[u8]>` buffers: fan-out to any number of subscribers never copies
//! page bytes.
//!
//! Each [`LiveClient`] embeds the same [`bdisk_sim::ClientCore`] the
//! simulator uses — same seeded request stream, same cache policy, same
//! warm-up and measurement rules — so a live run is directly comparable to
//! a simulator prediction. With a lossless transport and a jitter-free
//! think time, a live client's measurements are **bit-identical** to its
//! simulated twin: both operate on the integer slot lattice and the shared
//! core consumes random draws in the same order (`repro live` demonstrates
//! this at the paper's Figure 13 operating point).
//!
//! Time discipline: slot `seq` of the broadcast covers broadcast-unit time
//! `[seq, seq+1)`; a client that receives frame `seq` is at virtual time
//! `seq`. Response times are therefore reported in broadcast units, just
//! like the simulator and the paper.

#![warn(missing_docs)]

pub mod arbiter;
pub mod bus;
pub mod client;
pub mod engine;
pub mod faults;
pub mod fleet;
pub mod metrics;
pub mod obs;
pub mod tcp_evented;
pub mod tcp_threaded;
pub mod transport;
pub mod upstream;

// A 10k-tuner loopback fleet needs ~2 descriptors per connection, which
// outgrows default `ulimit -n`; benches raise it through this re-export.
pub use mini_mio::raise_nofile_limit;

pub use arbiter::{PullConfig, PullMode, PullStats, SlotArbiter, UserPullStats};
pub use bus::{BusSubscription, BusTuning, InMemoryBus};
pub use client::{ClientEpoch, DriftBook, LiveClient, LiveClientResult};
pub use engine::{BroadcastEngine, EngineCheckpoint, EngineConfig, EngineReport, EngineResume};
pub use faults::{crc32, ChannelFault, FaultCounts, FaultInjector, FaultPlan};
pub use fleet::{FleetReport, RequesterConfig, TunerFleet, TunerStats};
pub use metrics::{aggregate, LiveReport};
pub use obs::register_metrics;
pub use tcp_evented::EventedTcpTransport;
pub use tcp_threaded::{
    backoff_delay, ReconnectPolicy, TcpClientFeed, TcpFrameReader, TcpTransport,
    TcpTransportConfig, MAX_FRAME_LEN,
};
pub use transport::{
    Backpressure, DeliveryStats, Frame, FrameError, PagePayloads, PullRequest, Transport,
};
pub use upstream::{encode_request, UpstreamParser};
