//! Tuner fleets: thousands of broadcast receivers multiplexed on one
//! drainer thread, for fan-out benchmarks and smoke tests.
//!
//! A [`TunerFleet`] opens `n` loopback connections to a broadcast server
//! and drains all of them from a single thread with one [`mini_mio::Poll`]
//! — the receiving mirror of the evented transport's design, and the only
//! way to put 10k+ live connections on one core (a thread-per-tuner fleet
//! would need 10k stacks and a scheduler meltdown). Each tuner
//! incrementally reassembles the length-prefixed wire format, verifies
//! every frame's CRC (via [`crate::transport::body_crc_ok`], without
//! materializing a [`crate::Frame`]), and tracks sequence gaps. The fleet
//! runs until the server closes the connections, then reports per-tuner
//! and aggregate statistics.
//!
//! This is deliberately *not* a [`crate::LiveClient`] fleet: tuners here
//! measure the wire (frames, bytes, integrity, continuity), not cache
//! policy response times. Bench code wants the transport's fan-out
//! ceiling, and driving full client cores would measure the clients
//! instead.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use bdisk_sched::PageId;
use mini_mio::{Events, Interest, Poll, Token};

use crate::transport::{body_crc_ok, LEN_PREFIX};
use crate::upstream::encode_request;

/// Upstream-request behaviour for a requester fleet
/// ([`TunerFleet::launch_requesters`]): each tuner writes one pull
/// request up its own connection after every `every` intact frames it
/// receives, cycling through `pages` distinct pages. The cadence is
/// frame-driven rather than timer-driven so request volume is
/// deterministic per frames broadcast — what a fan-out bench wants when
/// it asserts on totals.
#[derive(Debug, Clone, Copy)]
pub struct RequesterConfig {
    /// Send one request per `every` intact frames received (must be ≥ 1).
    pub every: u64,
    /// Requested pages cycle over `0..pages` (must be ≥ 1), offset by the
    /// tuner's index so a fleet spreads its requests across pages.
    pub pages: u32,
}

/// What one tuner saw over its connection's lifetime.
#[derive(Debug, Clone, Copy, Default)]
pub struct TunerStats {
    /// Intact frames received (CRC verified).
    pub frames: u64,
    /// Wire bytes received (length prefixes included).
    pub bytes: u64,
    /// Frames discarded because their CRC failed.
    pub crc_errors: u64,
    /// Contiguous sequence-number gaps observed (dropped or erased spans).
    pub gaps: u64,
    /// Highest frame sequence number seen, if any frame arrived.
    pub last_seq: Option<u64>,
    /// Upstream pull requests written (requester fleets only).
    pub requests: u64,
}

/// Aggregate report for a completed fleet.
#[derive(Debug, Clone, Default)]
pub struct FleetReport {
    /// Per-tuner statistics, in connection order.
    pub tuners: Vec<TunerStats>,
}

impl FleetReport {
    /// Intact frames received across the whole fleet.
    pub fn total_frames(&self) -> u64 {
        self.tuners.iter().map(|t| t.frames).sum()
    }

    /// Wire bytes received across the whole fleet.
    pub fn total_bytes(&self) -> u64 {
        self.tuners.iter().map(|t| t.bytes).sum()
    }

    /// CRC-failed frames discarded across the whole fleet.
    pub fn total_crc_errors(&self) -> u64 {
        self.tuners.iter().map(|t| t.crc_errors).sum()
    }

    /// Tuners that observed at least one sequence gap.
    pub fn tuners_with_gaps(&self) -> usize {
        self.tuners.iter().filter(|t| t.gaps > 0).count()
    }

    /// Smallest per-tuner intact-frame count (0 for an empty fleet).
    pub fn min_frames(&self) -> u64 {
        self.tuners.iter().map(|t| t.frames).min().unwrap_or(0)
    }

    /// Upstream pull requests written across the whole fleet.
    pub fn total_requests(&self) -> u64 {
        self.tuners.iter().map(|t| t.requests).sum()
    }
}

/// Per-tuner reassembly state inside the drainer.
struct Tuner {
    stream: TcpStream,
    /// Bytes received but not yet parsed into complete frames.
    pending: Vec<u8>,
    stats: TunerStats,
    open: bool,
    /// Upstream request cadence, when this is a requester fleet.
    requester: Option<RequesterConfig>,
    /// Encoded request bytes not yet accepted by the (nonblocking)
    /// socket. Flushed opportunistically on every drain turn.
    outbox: Vec<u8>,
}

impl TunerStats {
    /// Accounts every complete frame at the head of `buf` and returns how
    /// many bytes were consumed (a trailing partial frame stays).
    fn consume(&mut self, buf: &[u8]) -> usize {
        let mut offset = 0usize;
        loop {
            let rest = &buf[offset..];
            if rest.len() < LEN_PREFIX {
                break;
            }
            let len = u32::from_le_bytes(rest[..LEN_PREFIX].try_into().unwrap()) as usize;
            if rest.len() < LEN_PREFIX + len {
                break;
            }
            let body = &rest[LEN_PREFIX..LEN_PREFIX + len];
            self.bytes += (LEN_PREFIX + len) as u64;
            if body_crc_ok(body) {
                let seq = u64::from_le_bytes(body[..8].try_into().unwrap());
                if let Some(last) = self.last_seq {
                    if seq > last + 1 {
                        self.gaps += 1;
                    }
                }
                self.last_seq = Some(self.last_seq.map_or(seq, |l| l.max(seq)));
                self.frames += 1;
            } else {
                self.crc_errors += 1;
            }
            offset += LEN_PREFIX + len;
        }
        offset
    }
}

impl Tuner {
    /// Feeds freshly-read bytes to the parser. When no partial frame is
    /// buffered, frames parse straight out of the read scratch and only a
    /// trailing fragment is copied — the common case re-buffers nothing.
    fn ingest(&mut self, chunk: &[u8]) {
        if self.pending.is_empty() {
            let consumed = self.stats.consume(chunk);
            self.pending.extend_from_slice(&chunk[consumed..]);
        } else {
            self.pending.extend_from_slice(chunk);
            let consumed = self.stats.consume(&self.pending);
            if consumed > 0 {
                self.pending.drain(..consumed);
            }
        }
    }

    /// Enqueues any requests the frame count now owes (one per `every`
    /// frames) and flushes the outbox as far as the socket will take it.
    /// `user` is the tuner's fleet index — the identity the broker's
    /// arbiter sees.
    fn pump_requests(&mut self, user: u32) {
        let Some(cfg) = self.requester else { return };
        let due = self.stats.frames / cfg.every.max(1);
        while self.stats.requests < due {
            let page = PageId((user + self.stats.requests as u32) % cfg.pages.max(1));
            let min_seq = self.stats.last_seq.map_or(0, |s| s + 1);
            self.outbox
                .extend_from_slice(&encode_request(user, page, min_seq));
            self.stats.requests += 1;
        }
        // Nonblocking flush: a full socket buffer just leaves the bytes
        // queued; the next readable turn (frames keep arriving) retries.
        while !self.outbox.is_empty() {
            match self.stream.write(&self.outbox) {
                Ok(0) => break,
                Ok(n) => {
                    self.outbox.drain(..n);
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                // A write error means the connection is dying; the read
                // side will observe and retire it.
                Err(_) => {
                    self.outbox.clear();
                    break;
                }
            }
        }
    }
}

/// A fleet of concurrent broadcast tuners drained by one thread.
///
/// [`TunerFleet::launch`] connects and starts draining immediately (so the
/// server's accept backlog never overflows under a 10k-connection storm);
/// [`TunerFleet::join`] blocks until the server has closed every
/// connection and returns the report.
pub struct TunerFleet {
    handle: JoinHandle<io::Result<FleetReport>>,
}

impl TunerFleet {
    /// Connects `n` tuners to `addr` and spawns the drainer thread.
    ///
    /// Connections are opened blocking (with retries — a connect storm can
    /// transiently overflow the accept backlog) and switched to
    /// nonblocking for the drain. Callers planning fleets beyond the
    /// process's file-descriptor limit should raise it first
    /// ([`mini_mio::raise_nofile_limit`]); each loopback tuner costs two
    /// descriptors (client end + server end).
    pub fn launch(addr: SocketAddr, n: usize) -> io::Result<TunerFleet> {
        let handle = std::thread::Builder::new()
            .name("tuner-fleet".into())
            .spawn(move || drain_fleet(addr, n, None))?;
        Ok(TunerFleet { handle })
    }

    /// Like [`TunerFleet::launch`], but every tuner also exercises the
    /// upstream backchannel: one pull request per
    /// [`RequesterConfig::every`] intact frames received, written up the
    /// same connection the broadcast arrives on. Tuner `i` identifies
    /// itself as user `i`.
    pub fn launch_requesters(
        addr: SocketAddr,
        n: usize,
        cfg: RequesterConfig,
    ) -> io::Result<TunerFleet> {
        let handle = std::thread::Builder::new()
            .name("tuner-fleet".into())
            .spawn(move || drain_fleet(addr, n, Some(cfg)))?;
        Ok(TunerFleet { handle })
    }

    /// Waits for the broadcast to end (server closes all connections) and
    /// returns what the fleet saw.
    pub fn join(self) -> io::Result<FleetReport> {
        self.handle
            .join()
            .unwrap_or_else(|_| Err(io::Error::other("tuner fleet thread panicked")))
    }
}

/// Connects with retries: a storm of simultaneous connects can outrun the
/// listener's accept backlog, surfacing as refused/reset connections that
/// succeed moments later once the server's event loop catches up.
fn connect_with_retry(addr: SocketAddr) -> io::Result<TcpStream> {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        match TcpStream::connect(addr) {
            Ok(stream) => return Ok(stream),
            Err(e) => {
                if Instant::now() >= deadline {
                    return Err(e);
                }
                std::thread::sleep(Duration::from_millis(2));
            }
        }
    }
}

fn drain_fleet(
    addr: SocketAddr,
    n: usize,
    requester: Option<RequesterConfig>,
) -> io::Result<FleetReport> {
    let mut poll = Poll::new()?;
    let mut events = Events::with_capacity(1024);
    let mut tuners: Vec<Tuner> = Vec::with_capacity(n);
    let mut scratch = vec![0u8; 64 * 1024];
    let mut open = 0usize;
    for i in 0..n {
        let stream = connect_with_retry(addr)?;
        stream.set_nonblocking(true)?;
        poll.register(&stream, Token(i), Interest::READABLE)?;
        tuners.push(Tuner {
            stream,
            pending: Vec::new(),
            stats: TunerStats::default(),
            open: true,
            requester,
            outbox: Vec::new(),
        });
        open += 1;
        // Interleave connecting with draining: frames already broadcast
        // to earlier tuners must not pile up in kernel buffers while the
        // tail of a 10k fleet is still connecting.
        if i % 64 == 63 {
            drain_once(
                &mut poll,
                &mut events,
                &mut tuners,
                &mut scratch,
                &mut open,
                Some(Duration::ZERO),
            )?;
        }
    }
    while open > 0 {
        drain_once(
            &mut poll,
            &mut events,
            &mut tuners,
            &mut scratch,
            &mut open,
            Some(Duration::from_millis(100)),
        )?;
    }
    Ok(FleetReport {
        tuners: tuners.into_iter().map(|t| t.stats).collect(),
    })
}

/// One poll turn: read every ready tuner dry, parse complete frames,
/// retire closed connections.
fn drain_once(
    poll: &mut Poll,
    events: &mut Events,
    tuners: &mut [Tuner],
    scratch: &mut [u8],
    open: &mut usize,
    timeout: Option<Duration>,
) -> io::Result<()> {
    poll.poll(events, timeout)?;
    for ev in events.iter() {
        let idx = ev.token().0;
        let Some(tuner) = tuners.get_mut(idx) else {
            continue;
        };
        if !tuner.open || !ev.is_readable() {
            continue;
        }
        loop {
            match tuner.stream.read(scratch) {
                Ok(0) => {
                    // Server closed: this tuner's broadcast is over.
                    let _ = poll.deregister(&tuner.stream);
                    tuner.open = false;
                    *open -= 1;
                    break;
                }
                Ok(read) => tuner.ingest(&scratch[..read]),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    let _ = poll.deregister(&tuner.stream);
                    tuner.open = false;
                    *open -= 1;
                    break;
                }
            }
        }
        if tuner.open {
            tuner.pump_requests(idx as u32);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tcp_evented::EventedTcpTransport;
    use crate::tcp_threaded::TcpTransportConfig;
    use crate::transport::{PagePayloads, Transport};
    use bdisk_sched::{PageId, Slot};

    #[test]
    fn fleet_drains_every_frame_from_evented_transport() {
        let mut transport = EventedTcpTransport::bind(TcpTransportConfig {
            queue_capacity: 4096,
            ..TcpTransportConfig::default()
        })
        .unwrap();
        let addr = transport.local_addr();
        let fleet = TunerFleet::launch(addr, 32).unwrap();
        assert!(transport.wait_for_clients(32, Duration::from_secs(10)));
        let payloads = PagePayloads::generate(8, 512);
        let slots = 200u64;
        for seq in 0..slots {
            transport.broadcast(payloads.frame(seq, Slot::Page(PageId(seq as u32 % 8))));
        }
        transport.finish();
        let report = fleet.join().unwrap();
        assert_eq!(report.tuners.len(), 32);
        assert_eq!(
            report.min_frames(),
            slots,
            "lossless run: no tuner lost a frame"
        );
        assert_eq!(report.total_frames(), slots * 32);
        assert_eq!(report.total_crc_errors(), 0);
        assert_eq!(report.tuners_with_gaps(), 0);
        let wire_len = payloads.frame(0, Slot::Page(PageId(0))).wire_len() as u64;
        assert_eq!(report.total_bytes(), slots * 32 * wire_len);
    }

    #[test]
    fn requester_fleet_requests_reach_the_server() {
        let mut transport = EventedTcpTransport::bind(TcpTransportConfig {
            queue_capacity: 4096,
            ..TcpTransportConfig::default()
        })
        .unwrap();
        let addr = transport.local_addr();
        let n = 8usize;
        let cfg = RequesterConfig { every: 4, pages: 8 };
        let fleet = TunerFleet::launch_requesters(addr, n, cfg).unwrap();
        assert!(transport.wait_for_clients(n, Duration::from_secs(10)));
        let payloads = PagePayloads::generate(8, 256);
        let slots = 64u64;
        for seq in 0..slots {
            transport.broadcast(payloads.frame(seq, Slot::Page(PageId(seq as u32 % 8))));
        }
        // One request per tuner per 4 frames, surfacing as the tuners
        // digest the broadcast.
        let expected = n as u64 * (slots / cfg.every);
        let mut requests = Vec::new();
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while (requests.len() as u64) < expected && std::time::Instant::now() < deadline {
            transport.take_requests(&mut requests);
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(requests.len() as u64, expected);
        assert!(requests.iter().all(|r| r.user < n as u32 && r.page.0 < 8));
        transport.finish();
        let report = fleet.join().unwrap();
        assert_eq!(report.total_requests(), expected);
        assert_eq!(report.min_frames(), slots);
    }

    #[test]
    fn fleet_counts_gaps_and_crc_failures() {
        use crate::faults::FaultPlan;
        let mut transport = EventedTcpTransport::bind(TcpTransportConfig {
            queue_capacity: 4096,
            ..TcpTransportConfig::default()
        })
        .unwrap();
        transport.set_fault_plan(FaultPlan {
            seed: 7,
            erasure: 0.2,
            corruption: 0.1,
            ..FaultPlan::none()
        });
        let addr = transport.local_addr();
        let fleet = TunerFleet::launch(addr, 4).unwrap();
        assert!(transport.wait_for_clients(4, Duration::from_secs(10)));
        let payloads = PagePayloads::generate(8, 128);
        for seq in 0..500u64 {
            transport.broadcast(payloads.frame(seq, Slot::Page(PageId(seq as u32 % 8))));
        }
        let counts = transport.fault_counts();
        transport.finish();
        let report = fleet.join().unwrap();
        assert!(counts.erased > 0 && counts.corrupted > 0);
        // Every tuner saw the same faulted stream: erasures surface as
        // sequence gaps, corruption as CRC discards.
        assert_eq!(report.tuners_with_gaps(), 4);
        assert_eq!(report.total_crc_errors(), counts.corrupted * 4);
        assert!(report.min_frames() > 0);
    }
}
