//! The in-memory broadcast bus: pre-sized per-subscriber frame queues fed
//! in batches, optionally sharded across a small worker pool.
//!
//! This is the transport for in-process experiments — `repro live` runs 16+
//! clients on it. With [`Backpressure::Block`] every subscriber sees every
//! frame in order (lossless), which is the setting under which a live
//! client's measurements are bit-identical to the simulator's.
//!
//! # Fan-out architecture
//!
//! The naive shape — one channel send per subscriber per slot — costs two
//! lock acquisitions and up to two condvar wakeups per subscriber per slot,
//! which is what made slot throughput degrade linearly with client count.
//! This bus instead:
//!
//! * **batches**: `broadcast` accumulates frames into a pending batch
//!   ([`BusTuning::batch`] frames) and flushes the whole batch into each
//!   subscriber queue under a single lock, with one wakeup per batch;
//! * **swap-drains**: a subscriber's `recv` takes every queued frame in one
//!   lock by swapping the queue's buffer with its drained local buffer, so
//!   the consumer side also pays ~one lock per batch;
//! * **shards**: with [`BusTuning::shards`] > 0, subscribers are
//!   partitioned round-robin across worker threads and each flush sends
//!   one shared `Arc<[Frame]>` batch per shard over a channel, so
//!   subscriber delivery runs off the engine thread (and in parallel on
//!   multi-core hosts);
//! * **keeps frames zero-copy**: queue entries are [`Frame`]s whose payload
//!   is a shared `Arc<[u8]>` — fan-out never copies page bytes;
//! * **allocates nothing in steady state**: subscriber buffers are
//!   pre-sized to the bus capacity, eviction uses in-place `swap_remove`
//!   instead of rebuilding the subscriber list, and batch flushes reuse the
//!   pending buffer.
//!
//! Delivery order per subscriber is identical in every mode (inline,
//! batched, sharded) — only the timing of stats reporting moves from
//! per-slot to per-flush.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use bdisk_obs::journal::{event, EventKind};
use crossbeam::channel::{bounded, unbounded, Receiver, Sender};

use crate::faults::{FaultCounts, FaultPlan, FaultSwitchboard, InjectedFrame};
use crate::transport::{Backpressure, DeliveryStats, Frame, Transport};

/// Process-wide queue-id source, so journal events can name the subscriber
/// queue they concern.
static NEXT_QUEUE_ID: AtomicU64 = AtomicU64::new(0);

/// One subscriber's bounded frame queue. The bus side pushes whole batches
/// under one lock; the subscriber side drains everything available in one
/// lock via buffer swap.
struct FrameQueue {
    state: Mutex<QueueState>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: usize,
    /// Stable id for journal events about this queue.
    id: u64,
}

struct QueueState {
    buf: VecDeque<Frame>,
    /// Subscriber dropped its end; pushes report the client gone.
    rx_closed: bool,
    /// Bus closed the feed; the subscriber drains what is queued, then
    /// sees the end of the stream.
    tx_closed: bool,
}

/// Outcome of pushing one batch into one subscriber queue.
#[derive(Default)]
struct QueuePush {
    delivered: u64,
    dropped: u64,
    bytes: u64,
    max_backlog: usize,
    /// The subscriber must be removed (reader gone, or the Disconnect
    /// policy fired on a full buffer).
    evicted: bool,
}

impl FrameQueue {
    fn new(capacity: usize) -> Arc<Self> {
        Arc::new(Self {
            state: Mutex::new(QueueState {
                buf: VecDeque::with_capacity(capacity),
                rx_closed: false,
                tx_closed: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity,
            id: NEXT_QUEUE_ID.fetch_add(1, Ordering::Relaxed),
        })
    }

    /// Pushes `frames` in order under one lock, applying `bp` to overflow.
    /// Backlog is sampled *before* each enqueue (and before any blocking
    /// wait), so `max_backlog` reports true peak lag: a full buffer under
    /// [`Backpressure::Block`] counts the queued frames plus the one in
    /// flight.
    fn push_batch(&self, frames: &[Frame], bp: Backpressure) -> QueuePush {
        let mut out = QueuePush::default();
        let mut st = self.state.lock().expect("bus queue poisoned");
        'frames: for frame in frames {
            if st.rx_closed {
                out.evicted = true;
                break;
            }
            let backlog = st.buf.len();
            match bp {
                Backpressure::Block => {
                    let mut stalled = false;
                    while st.buf.len() == self.capacity {
                        if st.rx_closed {
                            out.evicted = true;
                            break 'frames;
                        }
                        if !stalled {
                            stalled = true;
                            crate::obs::bus().stalls.inc();
                            event(EventKind::BackpressureStall, self.id, backlog as u64);
                        }
                        // About to sleep on the consumer: make sure it can
                        // see everything pushed so far.
                        self.not_empty.notify_one();
                        st = self.not_full.wait(st).expect("bus queue poisoned");
                    }
                    if st.rx_closed {
                        out.evicted = true;
                        break;
                    }
                    st.buf.push_back(frame.clone());
                    out.delivered += 1;
                    out.bytes += frame.wire_len() as u64;
                    out.max_backlog = out.max_backlog.max(backlog + 1);
                }
                Backpressure::DropNewest => {
                    if st.buf.len() == self.capacity {
                        out.dropped += 1;
                        out.max_backlog = out.max_backlog.max(backlog);
                    } else {
                        st.buf.push_back(frame.clone());
                        out.delivered += 1;
                        out.bytes += frame.wire_len() as u64;
                        out.max_backlog = out.max_backlog.max(backlog + 1);
                    }
                }
                Backpressure::Disconnect => {
                    if st.buf.len() == self.capacity {
                        out.evicted = true;
                        break;
                    }
                    st.buf.push_back(frame.clone());
                    out.delivered += 1;
                    out.bytes += frame.wire_len() as u64;
                    out.max_backlog = out.max_backlog.max(backlog + 1);
                }
            }
        }
        drop(st);
        self.not_empty.notify_one();
        out
    }

    /// Ends the feed from the bus side; the subscriber drains the rest.
    fn close_tx(&self) {
        self.state.lock().expect("bus queue poisoned").tx_closed = true;
        self.not_empty.notify_all();
    }

    /// Marks the subscriber gone; pending and future pushes fail.
    fn close_rx(&self) {
        self.state.lock().expect("bus queue poisoned").rx_closed = true;
        self.not_full.notify_all();
    }

    fn queued(&self) -> usize {
        self.state.lock().expect("bus queue poisoned").buf.len()
    }
}

/// A subscriber's end of the bus: an ordered frame feed.
///
/// Frames are drained from the shared queue in whole batches (one lock per
/// batch) into a local buffer that `recv` pops from.
pub struct BusSubscription {
    queue: Arc<FrameQueue>,
    local: VecDeque<Frame>,
}

impl BusSubscription {
    /// Blocks for the next frame; `None` once the bus shuts down and the
    /// backlog is drained.
    pub fn recv(&mut self) -> Option<Frame> {
        if let Some(frame) = self.local.pop_front() {
            return Some(frame);
        }
        let mut st = self.queue.state.lock().expect("bus queue poisoned");
        loop {
            if !st.buf.is_empty() {
                // Take the whole backlog in one lock: swap the queue's
                // buffer with our drained local one (both keep their
                // allocations, so steady-state receives allocate nothing).
                std::mem::swap(&mut st.buf, &mut self.local);
                drop(st);
                self.queue.not_full.notify_one();
                return self.local.pop_front();
            }
            if st.tx_closed {
                return None;
            }
            st = self.queue.not_empty.wait(st).expect("bus queue poisoned");
        }
    }

    /// Frames currently queued (the subscriber's lag behind the engine),
    /// including locally buffered frames not yet popped.
    pub fn lag(&self) -> usize {
        self.local.len() + self.queue.queued()
    }
}

impl Drop for BusSubscription {
    fn drop(&mut self) {
        self.queue.close_rx();
    }
}

/// Fan-out tuning: flush batching and worker-pool sharding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BusTuning {
    /// Frames accumulated before a flush (>= 1). With 1, every `broadcast`
    /// flushes immediately and stats are reported per slot.
    pub batch: usize,
    /// Worker shards delivering flushes. 0 delivers inline on the
    /// broadcasting thread; >= 1 partitions subscribers round-robin across
    /// that many worker threads, one channel batch per shard per flush.
    pub shards: usize,
}

impl Default for BusTuning {
    fn default() -> Self {
        Self {
            batch: 1,
            shards: 0,
        }
    }
}

impl BusTuning {
    /// Throughput-oriented tuning: batched flushes, with worker shards
    /// matched to the host's parallelism (capped at 4).
    pub fn throughput() -> Self {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        Self {
            batch: 32,
            shards: cores.clamp(1, 4),
        }
    }
}

/// A flush job handed to a shard worker.
enum ShardJob {
    /// Register a new subscriber queue with this shard.
    Subscribe(Arc<FrameQueue>),
    /// Deliver this shared batch to every subscriber of the shard.
    Flush(Arc<[Frame]>),
}

struct Shard {
    jobs: Sender<ShardJob>,
    stats: Receiver<DeliveryStats>,
    handle: JoinHandle<()>,
}

enum Fanout {
    /// Deliver on the broadcasting thread.
    Inline { subs: Vec<Arc<FrameQueue>> },
    /// Deliver on worker threads, one subscriber partition each.
    Sharded { shards: Vec<Shard>, next: usize },
}

/// Batched, optionally sharded broadcast bus.
pub struct InMemoryBus {
    capacity: usize,
    backpressure: Backpressure,
    batch: usize,
    pending: Vec<Frame>,
    /// Subscribers registered minus disconnects observed at flushes.
    active: usize,
    fanout: Fanout,
    /// Per-channel fault choke points (default plan + overrides).
    faults: FaultSwitchboard,
    /// Reusable injector output buffer (fault path only).
    fault_out: Vec<InjectedFrame>,
    /// Per-channel fan-out counters, cached so steady state never touches
    /// the registry.
    channel_frames: crate::obs::ChannelCounters,
}

/// Delivers one batch to every queue, evicting in place (`swap_remove`, no
/// list rebuild, no allocation).
fn deliver(subs: &mut Vec<Arc<FrameQueue>>, frames: &[Frame], bp: Backpressure) -> DeliveryStats {
    let mut stats = DeliveryStats::default();
    let mut i = 0;
    while i < subs.len() {
        let push = subs[i].push_batch(frames, bp);
        stats.delivered += push.delivered;
        stats.dropped += push.dropped;
        stats.bytes += push.bytes;
        stats.max_queue = stats.max_queue.max(push.max_backlog);
        if push.delivered > 0 {
            event(EventKind::Enqueue, subs[i].id, push.delivered);
        }
        if push.dropped > 0 {
            event(EventKind::Drop, subs[i].id, push.dropped);
        }
        if push.evicted {
            // Close the feed so an evicted-but-alive reader drains what is
            // already queued, then sees the end of its stream.
            event(
                EventKind::Disconnect,
                subs[i].id,
                u64::from(bp == Backpressure::Disconnect),
            );
            subs[i].close_tx();
            subs.swap_remove(i);
            stats.disconnected += 1;
        } else {
            i += 1;
        }
    }
    stats
}

fn spawn_shard(index: usize, backpressure: Backpressure) -> Shard {
    let (job_tx, job_rx) = unbounded::<ShardJob>();
    let (stat_tx, stat_rx) = bounded::<DeliveryStats>(1);
    let handle = std::thread::spawn(move || {
        let depth = crate::obs::shard_queue_depth(index);
        let mut subs: Vec<Arc<FrameQueue>> = Vec::new();
        while let Ok(job) = job_rx.recv() {
            match job {
                ShardJob::Subscribe(queue) => subs.push(queue),
                ShardJob::Flush(frames) => {
                    let stats = deliver(&mut subs, &frames, backpressure);
                    depth.set(stats.max_queue as i64);
                    if stat_tx.send(stats).is_err() {
                        break;
                    }
                }
            }
        }
        // Bus shut down: end every remaining feed.
        for queue in subs {
            queue.close_tx();
        }
    });
    Shard {
        jobs: job_tx,
        stats: stat_rx,
        handle,
    }
}

impl InMemoryBus {
    /// Creates a bus whose per-subscriber buffers hold `capacity` frames,
    /// with `backpressure` applied when a buffer is full. Uses the default
    /// tuning (flush every slot, deliver inline) — see [`Self::with_tuning`]
    /// for the batched/sharded fast path.
    pub fn new(capacity: usize, backpressure: Backpressure) -> Self {
        Self::with_tuning(capacity, backpressure, BusTuning::default())
    }

    /// Creates a bus with explicit fan-out tuning.
    pub fn with_tuning(capacity: usize, backpressure: Backpressure, tuning: BusTuning) -> Self {
        assert!(capacity > 0, "bus needs buffer capacity");
        assert!(tuning.batch > 0, "flush batch must hold at least one frame");
        let fanout = if tuning.shards == 0 {
            Fanout::Inline { subs: Vec::new() }
        } else {
            Fanout::Sharded {
                shards: (0..tuning.shards)
                    .map(|i| spawn_shard(i, backpressure))
                    .collect(),
                next: 0,
            }
        };
        Self {
            capacity,
            backpressure,
            batch: tuning.batch,
            pending: Vec::with_capacity(tuning.batch),
            active: 0,
            fanout,
            faults: FaultSwitchboard::new(),
            fault_out: Vec::new(),
            channel_frames: crate::obs::ChannelCounters::new(crate::obs::fanout_by_channel),
        }
    }

    /// Installs (or, with [`FaultPlan::is_none`], removes) the fault plan
    /// this bus's broadcasts run under, on **every** channel — clearing any
    /// per-channel overrides. A zero plan leaves the broadcast path
    /// bit-identical — and allocation-identical — to never having called
    /// this. Channel `c`'s injector keys its decisions to `c`, so channels
    /// sharing one plan still fault independently.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.faults.set_default(plan);
    }

    /// Overrides the fault plan for one broadcast channel (other channels
    /// keep the [`Self::set_fault_plan`] default, or run clean without
    /// one).
    pub fn set_channel_fault_plan(&mut self, channel: u16, plan: FaultPlan) {
        self.faults.set_channel(channel, plan);
    }

    /// Faults injected so far, summed over every channel's injector.
    pub fn fault_counts(&self) -> FaultCounts {
        self.faults.counts()
    }

    /// Adds a subscriber; call before starting the engine (frames sent
    /// before subscription are not replayed).
    pub fn subscribe(&mut self) -> BusSubscription {
        let queue = FrameQueue::new(self.capacity);
        let sub = BusSubscription {
            queue: Arc::clone(&queue),
            local: VecDeque::with_capacity(self.capacity),
        };
        match &mut self.fanout {
            Fanout::Inline { subs } => subs.push(queue),
            Fanout::Sharded { shards, next } => {
                assert!(
                    shards[*next].jobs.send(ShardJob::Subscribe(queue)).is_ok(),
                    "shard worker alive"
                );
                *next = (*next + 1) % shards.len();
            }
        }
        self.active += 1;
        crate::obs::bus().subscribers.add(1);
        sub
    }

    /// Delivers the pending batch, returning its stats (empty if nothing
    /// was pending).
    fn flush(&mut self) -> DeliveryStats {
        if self.pending.is_empty() {
            return DeliveryStats::default();
        }
        let m = crate::obs::bus();
        m.flushes.inc();
        m.batch_occupancy.record(self.pending.len() as u64);
        let stats = match &mut self.fanout {
            Fanout::Inline { subs } => deliver(subs, &self.pending, self.backpressure),
            Fanout::Sharded { shards, .. } => {
                // One shared batch per shard: the frames (and their
                // payloads) are cloned by refcount, not copied.
                let batch: Arc<[Frame]> = self.pending.as_slice().into();
                for shard in shards.iter() {
                    let _ = shard.jobs.send(ShardJob::Flush(Arc::clone(&batch)));
                }
                let mut stats = DeliveryStats::default();
                for shard in shards.iter() {
                    if let Ok(s) = shard.stats.recv() {
                        stats.absorb(s);
                    }
                }
                stats
            }
        };
        self.pending.clear();
        let gone = (stats.disconnected as usize).min(self.active);
        self.active -= gone;
        m.subscribers.add(-(gone as i64));
        stats
    }

    /// Closes every feed and joins workers without flushing pending frames.
    fn close(&mut self) {
        match &mut self.fanout {
            Fanout::Inline { subs } => {
                for queue in subs.drain(..) {
                    queue.close_tx();
                }
            }
            Fanout::Sharded { shards, .. } => {
                for shard in shards.drain(..) {
                    let Shard {
                        jobs,
                        stats: _,
                        handle,
                    } = shard;
                    drop(jobs);
                    let _ = handle.join();
                }
            }
        }
        crate::obs::bus().subscribers.add(-(self.active as i64));
        self.active = 0;
    }
}

impl Transport for InMemoryBus {
    fn broadcast(&mut self, frame: Frame) -> DeliveryStats {
        self.channel_frames.get(frame.channel).inc();
        if self.faults.active() {
            let mut out = std::mem::take(&mut self.fault_out);
            out.clear();
            if let Some(inj) = self.faults.injector_mut(frame.channel) {
                inj.step(frame, &mut out);
                for injected in out.drain(..) {
                    // The bus has no wire encoding, so in-flight bit damage
                    // is modeled at its observable effect: the receiver's
                    // CRC check discards the frame, i.e. it is withheld
                    // here. A client sees the identical sequence gap either
                    // way.
                    if injected.corrupt.is_none() {
                        self.pending.push(injected.frame);
                    }
                }
            } else {
                self.pending.push(frame);
            }
            self.fault_out = out;
        } else {
            self.pending.push(frame);
        }
        if self.pending.len() >= self.batch {
            self.flush()
        } else {
            DeliveryStats::default()
        }
    }

    fn active_clients(&self) -> usize {
        self.active
    }

    fn finish(&mut self) -> DeliveryStats {
        let stats = self.flush();
        self.close();
        stats
    }
}

impl Drop for InMemoryBus {
    fn drop(&mut self) {
        // Close without flushing: a flush could block on a full queue with
        // no consumer, and anyone who cares about tail stats calls
        // `finish` explicitly (the engine always does).
        self.close();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bdisk_sched::{PageId, Slot};

    fn frame(seq: u64) -> Frame {
        Frame::bare(seq, Slot::Page(PageId(seq as u32 % 3)))
    }

    fn drain(mut sub: BusSubscription) -> Vec<u64> {
        std::iter::from_fn(|| sub.recv()).map(|f| f.seq).collect()
    }

    #[test]
    fn every_subscriber_sees_every_frame_in_order() {
        let mut bus = InMemoryBus::new(16, Backpressure::Block);
        let a = bus.subscribe();
        let b = bus.subscribe();
        for seq in 0..5 {
            let stats = bus.broadcast(frame(seq));
            assert_eq!(stats.delivered, 2);
            assert_eq!(stats.dropped, 0);
        }
        bus.finish();
        for sub in [a, b] {
            assert_eq!(drain(sub), vec![0, 1, 2, 3, 4]);
        }
    }

    #[test]
    fn drop_newest_loses_frames_but_keeps_client() {
        let mut bus = InMemoryBus::new(2, Backpressure::DropNewest);
        let sub = bus.subscribe();
        let mut dropped = 0;
        for seq in 0..5 {
            dropped += bus.broadcast(frame(seq)).dropped;
        }
        assert_eq!(dropped, 3); // buffer holds 2 of 5
        assert_eq!(bus.active_clients(), 1);
        bus.finish();
        assert_eq!(drain(sub), vec![0, 1]);
    }

    #[test]
    fn disconnect_evicts_slow_subscriber() {
        let mut bus = InMemoryBus::new(1, Backpressure::Disconnect);
        let _sub = bus.subscribe();
        assert_eq!(bus.broadcast(frame(0)).delivered, 1);
        let stats = bus.broadcast(frame(1)); // buffer full -> evicted
        assert_eq!(stats.disconnected, 1);
        assert_eq!(bus.active_clients(), 0);
    }

    #[test]
    fn dead_receiver_is_removed() {
        let mut bus = InMemoryBus::new(4, Backpressure::Block);
        let sub = bus.subscribe();
        drop(sub);
        let stats = bus.broadcast(frame(0));
        assert_eq!(stats.disconnected, 1);
        assert_eq!(bus.active_clients(), 0);
    }

    #[test]
    fn lag_reports_backlog() {
        let mut bus = InMemoryBus::new(8, Backpressure::Block);
        let mut sub = bus.subscribe();
        for seq in 0..3 {
            bus.broadcast(frame(seq));
        }
        assert_eq!(sub.lag(), 3);
        sub.recv();
        assert_eq!(sub.lag(), 2);
    }

    #[test]
    fn batched_bus_reports_stats_at_flush_boundaries() {
        let mut bus = InMemoryBus::with_tuning(
            64,
            Backpressure::Block,
            BusTuning {
                batch: 4,
                shards: 0,
            },
        );
        let sub = bus.subscribe();
        let mut per_slot = Vec::new();
        for seq in 0..6 {
            per_slot.push(bus.broadcast(frame(seq)).delivered);
        }
        // Slots 0..3 buffered, flushed together at slot 3; 4..5 pending.
        assert_eq!(per_slot, vec![0, 0, 0, 4, 0, 0]);
        let tail = bus.finish();
        assert_eq!(tail.delivered, 2);
        assert_eq!(drain(sub), vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn sharded_bus_delivers_everything_in_order() {
        let mut bus = InMemoryBus::with_tuning(
            256,
            Backpressure::Block,
            BusTuning {
                batch: 8,
                shards: 3,
            },
        );
        let subs: Vec<_> = (0..5).map(|_| bus.subscribe()).collect();
        assert_eq!(bus.active_clients(), 5);
        let mut totals = DeliveryStats::default();
        for seq in 0..20 {
            totals.absorb(bus.broadcast(frame(seq)));
        }
        totals.absorb(bus.finish());
        assert_eq!(totals.delivered, 5 * 20);
        assert_eq!(totals.dropped, 0);
        let expect: Vec<u64> = (0..20).collect();
        for sub in subs {
            assert_eq!(drain(sub), expect);
        }
    }

    #[test]
    fn sharded_bus_counts_disconnects() {
        let mut bus = InMemoryBus::with_tuning(
            4,
            Backpressure::Disconnect,
            BusTuning {
                batch: 1,
                shards: 2,
            },
        );
        let keep = bus.subscribe();
        let evict = bus.subscribe();
        drop(evict);
        let stats = bus.broadcast(frame(0));
        assert_eq!(stats.disconnected, 1);
        assert_eq!(stats.delivered, 1);
        assert_eq!(bus.active_clients(), 1);
        bus.finish();
        assert_eq!(drain(keep), vec![0]);
    }

    /// Satellite fix: `max_queue` is sampled before the enqueue, so a
    /// blocked send reports the true peak lag (full buffer plus the frame
    /// in flight) instead of whatever remains after the consumer drains.
    #[test]
    fn max_queue_samples_backlog_before_blocking_enqueue() {
        let mut bus = InMemoryBus::new(1, Backpressure::Block);
        let mut sub = bus.subscribe();
        let first = bus.broadcast(frame(0));
        assert_eq!(first.max_queue, 1);

        let consumer = std::thread::spawn(move || {
            // Let the second broadcast block on the full buffer first.
            std::thread::sleep(std::time::Duration::from_millis(50));
            let mut seen = Vec::new();
            while let Some(f) = sub.recv() {
                seen.push(f.seq);
            }
            seen
        });
        // Buffer full (frame 0 queued): peak lag is 1 queued + 1 in
        // flight. Sampling after the blocking send returns would race the
        // consumer and could report as little as 0.
        let second = bus.broadcast(frame(1));
        assert_eq!(second.max_queue, 2);
        bus.finish();
        assert_eq!(consumer.join().unwrap(), vec![0, 1]);
    }

    #[test]
    fn erasure_plan_withholds_exactly_the_planned_slots() {
        use crate::faults::ChannelFault;
        let plan = FaultPlan::erasure_only(21, 0.25);
        let mut bus = InMemoryBus::new(64, Backpressure::Block);
        bus.set_fault_plan(plan);
        let sub = bus.subscribe();
        for seq in 0..40 {
            bus.broadcast(frame(seq));
        }
        bus.finish();
        let expect: Vec<u64> = (0..40)
            .filter(|&s| plan.channel_fault(s) == ChannelFault::Deliver)
            .collect();
        assert!(expect.len() < 40, "seed must erase something");
        assert_eq!(drain(sub), expect);
        assert_eq!(bus.fault_counts().erased, 40 - expect.len() as u64);
    }

    #[test]
    fn none_plan_is_inert() {
        let mut bus = InMemoryBus::new(16, Backpressure::Block);
        bus.set_fault_plan(FaultPlan::none());
        let sub = bus.subscribe();
        for seq in 0..5 {
            bus.broadcast(frame(seq));
        }
        bus.finish();
        assert_eq!(drain(sub), vec![0, 1, 2, 3, 4]);
        assert_eq!(bus.fault_counts(), FaultCounts::default());
    }

    #[test]
    fn evicted_reader_still_drains_backlog() {
        let mut bus = InMemoryBus::new(1, Backpressure::Disconnect);
        let sub = bus.subscribe();
        bus.broadcast(frame(0));
        bus.broadcast(frame(1)); // full -> evicted, feed closed
        assert_eq!(bus.active_clients(), 0);
        assert_eq!(drain(sub), vec![0]);
    }
}
