//! The in-memory broadcast bus: one bounded channel per subscriber.
//!
//! This is the transport for in-process experiments — `repro live` runs 16+
//! clients on it. With [`Backpressure::Block`] every subscriber sees every
//! frame in order (lossless), which is the setting under which a live
//! client's measurements are bit-identical to the simulator's.

use crossbeam::channel::{bounded, Receiver, Sender, TrySendError};

use crate::transport::{Backpressure, DeliveryStats, Frame, Transport};

/// A subscriber's end of the bus: an ordered frame feed.
pub struct BusSubscription {
    rx: Receiver<Frame>,
}

impl BusSubscription {
    /// Blocks for the next frame; `None` once the bus shuts down.
    pub fn recv(&self) -> Option<Frame> {
        self.rx.recv().ok()
    }

    /// Frames currently queued (the subscriber's lag behind the engine).
    pub fn lag(&self) -> usize {
        self.rx.len()
    }
}

/// Channel-based broadcast bus.
pub struct InMemoryBus {
    subscribers: Vec<Sender<Frame>>,
    capacity: usize,
    backpressure: Backpressure,
}

impl InMemoryBus {
    /// Creates a bus whose per-subscriber buffers hold `capacity` frames,
    /// with `backpressure` applied when a buffer is full.
    pub fn new(capacity: usize, backpressure: Backpressure) -> Self {
        assert!(capacity > 0, "bus needs buffer capacity");
        Self {
            subscribers: Vec::new(),
            capacity,
            backpressure,
        }
    }

    /// Adds a subscriber; call before starting the engine (frames sent
    /// before subscription are not replayed).
    pub fn subscribe(&mut self) -> BusSubscription {
        let (tx, rx) = bounded(self.capacity);
        self.subscribers.push(tx);
        BusSubscription { rx }
    }
}

impl Transport for InMemoryBus {
    fn broadcast(&mut self, frame: Frame) -> DeliveryStats {
        let mut stats = DeliveryStats::default();
        // retain_mut in spirit: rebuild the list, dropping dead or evicted
        // subscribers.
        let mut kept = Vec::with_capacity(self.subscribers.len());
        for tx in self.subscribers.drain(..) {
            let outcome = match self.backpressure {
                Backpressure::Block => match tx.send(frame) {
                    Ok(()) => Ok(()),
                    // Receiver gone: the client finished or died.
                    Err(_) => Err(None),
                },
                Backpressure::DropNewest | Backpressure::Disconnect => match tx.try_send(frame) {
                    Ok(()) => Ok(()),
                    Err(TrySendError::Full(_)) => Err(Some(self.backpressure)),
                    Err(TrySendError::Disconnected(_)) => Err(None),
                },
            };
            match outcome {
                Ok(()) => {
                    stats.delivered += 1;
                    stats.max_queue = stats.max_queue.max(tx.len());
                    kept.push(tx);
                }
                Err(Some(Backpressure::DropNewest)) => {
                    stats.dropped += 1;
                    stats.max_queue = stats.max_queue.max(tx.len());
                    kept.push(tx);
                }
                Err(Some(Backpressure::Disconnect)) | Err(Some(Backpressure::Block)) => {
                    // Evict the slow subscriber: dropping the sender closes
                    // its feed after it drains what is already queued.
                    stats.disconnected += 1;
                }
                Err(None) => {
                    stats.disconnected += 1;
                }
            }
        }
        self.subscribers = kept;
        stats
    }

    fn active_clients(&self) -> usize {
        self.subscribers.len()
    }

    fn finish(&mut self) {
        self.subscribers.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bdisk_sched::{PageId, Slot};

    fn frame(seq: u64) -> Frame {
        Frame {
            seq,
            slot: Slot::Page(PageId(seq as u32 % 3)),
        }
    }

    #[test]
    fn every_subscriber_sees_every_frame_in_order() {
        let mut bus = InMemoryBus::new(16, Backpressure::Block);
        let a = bus.subscribe();
        let b = bus.subscribe();
        for seq in 0..5 {
            let stats = bus.broadcast(frame(seq));
            assert_eq!(stats.delivered, 2);
            assert_eq!(stats.dropped, 0);
        }
        bus.finish();
        for sub in [a, b] {
            let seqs: Vec<u64> = std::iter::from_fn(|| sub.recv()).map(|f| f.seq).collect();
            assert_eq!(seqs, vec![0, 1, 2, 3, 4]);
        }
    }

    #[test]
    fn drop_newest_loses_frames_but_keeps_client() {
        let mut bus = InMemoryBus::new(2, Backpressure::DropNewest);
        let sub = bus.subscribe();
        let mut dropped = 0;
        for seq in 0..5 {
            dropped += bus.broadcast(frame(seq)).dropped;
        }
        assert_eq!(dropped, 3); // buffer holds 2 of 5
        assert_eq!(bus.active_clients(), 1);
        bus.finish();
        let seqs: Vec<u64> = std::iter::from_fn(|| sub.recv()).map(|f| f.seq).collect();
        assert_eq!(seqs, vec![0, 1]);
    }

    #[test]
    fn disconnect_evicts_slow_subscriber() {
        let mut bus = InMemoryBus::new(1, Backpressure::Disconnect);
        let _sub = bus.subscribe();
        assert_eq!(bus.broadcast(frame(0)).delivered, 1);
        let stats = bus.broadcast(frame(1)); // buffer full -> evicted
        assert_eq!(stats.disconnected, 1);
        assert_eq!(bus.active_clients(), 0);
    }

    #[test]
    fn dead_receiver_is_removed() {
        let mut bus = InMemoryBus::new(4, Backpressure::Block);
        let sub = bus.subscribe();
        drop(sub);
        let stats = bus.broadcast(frame(0));
        assert_eq!(stats.disconnected, 1);
        assert_eq!(bus.active_clients(), 0);
    }

    #[test]
    fn lag_reports_backlog() {
        let mut bus = InMemoryBus::new(8, Backpressure::Block);
        let sub = bus.subscribe();
        for seq in 0..3 {
            bus.broadcast(frame(seq));
        }
        assert_eq!(sub.lag(), 3);
        sub.recv();
        assert_eq!(sub.lag(), 2);
    }
}
