//! The broadcast engine: walks a broadcast plan's slot sequence on a
//! wall-clock ticker and fans each slot out through a [`Transport`] — one
//! frame per channel per slot tick, all channels phase-locked to the same
//! clock.

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bdisk_code::ChannelCode;
use bdisk_obs::journal::{event, EventKind};
use bdisk_obs::trace;
use bdisk_sched::{BroadcastPlan, BroadcastProgram, ChannelId, Slot};

use crate::arbiter::{PullConfig, PullMode, PullStats, SlotArbiter};
use crate::faults::{FaultPlan, FAULT_CODE_OVERRUN};
use crate::transport::{DeliveryStats, Frame, PagePayloads, PullRequest, Transport, REPAIR_FLAG};

/// Per-channel repair-symbol payloads, precomputed once per run: channel
/// `c`'s entry `r` is the XOR of the covered pages' payloads for repair
/// symbol `r`. A symbol's page set is fixed per period offset, so the
/// composition never changes across cycles — airing a repair slot is the
/// same refcount bump a page slot pays.
fn repair_tables(plan: &BroadcastPlan, payloads: &PagePayloads) -> Option<Vec<Vec<Arc<[u8]>>>> {
    let cfg = plan.coding()?;
    let tables = (0..plan.num_channels())
        .map(|c| {
            let ch = ChannelId(c as u16);
            let code = ChannelCode::build(plan.program(ch), c as u16, cfg);
            code.symbols()
                .iter()
                .map(|sym| {
                    let mut buf = vec![0u8; payloads.page_size()];
                    for &(_, local) in &sym.covers {
                        let global = plan.global_page(ch, local);
                        bdisk_code::xor_into(&mut buf, payloads.page(global));
                    }
                    Arc::from(buf)
                })
                .collect()
        })
        .collect();
    Some(tables)
}

/// Engine run parameters.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Maximum slots to broadcast before stopping.
    pub max_slots: u64,
    /// Wall-clock duration of one slot. `Duration::ZERO` free-runs the
    /// broadcast as fast as the transport accepts frames.
    pub slot_duration: Duration,
    /// Stop early once every client has disconnected (or finished).
    pub stop_when_no_clients: bool,
    /// With [`Self::stop_when_no_clients`], keep broadcasting this many
    /// consecutive zero-client slots before actually stopping. Under fault
    /// plans that kill connections, a momentarily empty client set is
    /// usually a fleet mid-reconnect — the slot clock must keep ticking so
    /// rejoining clients resync into an unperturbed schedule. 0 (the
    /// default) stops at the first zero-client observation, the pre-fault
    /// behavior.
    pub no_client_grace_slots: u64,
    /// Bytes of page payload carried by each page frame (`PageSize`,
    /// paper Table 2). Payloads are generated once per run and shared by
    /// refcount across every subscriber. 0 sends bare frames.
    pub page_size: usize,
    /// Engine-level fault schedule: the `overrun` rate and the
    /// deterministic `broker_kill_slot` apply here (channel faults live in
    /// the transport's injector — see `InMemoryBus::set_fault_plan` /
    /// `TcpTransport::set_fault_plan`). An overrun slot is broadcast one
    /// extra slot-duration late; slot deadlines are absolute
    /// (`start + seq * slot_duration`), so the delay never accumulates
    /// into clock drift.
    pub fault_plan: FaultPlan,
    /// Resume point from a prior run's [`EngineCheckpoint`] snapshot: the
    /// engine picks the plan book up at this epoch and slot clock instead
    /// of slot 0 (broker restart recovery). `None` starts fresh.
    pub resume: Option<EngineResume>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            max_slots: u64::MAX,
            slot_duration: Duration::ZERO,
            stop_when_no_clients: true,
            no_client_grace_slots: 0,
            page_size: 64,
            fault_plan: FaultPlan::none(),
            resume: None,
        }
    }
}

/// A crash-survivable engine position: everything a restarted broker
/// needs to resume airing the current epoch at the right phase. Produced
/// by [`EngineCheckpoint::snapshot`], consumed via
/// [`EngineConfig::resume`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineResume {
    /// Plan-book index the engine was airing.
    pub epoch: u32,
    /// Next slot seq to air (the global slot clock never resets).
    pub seq: u64,
    /// Absolute seq where `epoch`'s slot clock starts.
    pub base: u64,
    /// [`BroadcastPlan::plan_hash`] of the epoch's plan — resume validates
    /// this against the book it was handed, so a restart with a different
    /// plan file fails loudly instead of airing a mislabeled schedule.
    pub plan_hash: u64,
}

/// The engine's live checkpoint: updated with relaxed atomic stores on
/// every slot tick, snapshot-able from any thread at any time. Holding a
/// clone of the `Arc` across an engine crash (or a deliberate kill) is
/// what lets the experiment layer restart a broker mid-run.
#[derive(Debug, Default)]
pub struct EngineCheckpoint {
    epoch: AtomicU32,
    next_seq: AtomicU64,
    base: AtomicU64,
    plan_hash: AtomicU64,
}

impl EngineCheckpoint {
    /// The resume point as of the most recently aired slot.
    pub fn snapshot(&self) -> EngineResume {
        EngineResume {
            epoch: self.epoch.load(Ordering::Relaxed),
            seq: self.next_seq.load(Ordering::Relaxed),
            base: self.base.load(Ordering::Relaxed),
            plan_hash: self.plan_hash.load(Ordering::Relaxed),
        }
    }

    fn store(&self, epoch: u32, next_seq: u64, base: u64, plan_hash: u64) {
        self.epoch.store(epoch, Ordering::Relaxed);
        self.next_seq.store(next_seq, Ordering::Relaxed);
        self.base.store(base, Ordering::Relaxed);
        self.plan_hash.store(plan_hash, Ordering::Relaxed);
    }
}

/// What the engine did: slot throughput and aggregate delivery accounting.
#[derive(Debug, Clone)]
pub struct EngineReport {
    /// Slots broadcast before stopping.
    pub slots_sent: u64,
    /// Broadcast periods completed (`slots_sent / period`).
    pub major_cycles: u64,
    /// Frames successfully enqueued to clients, summed over slots.
    pub frames_delivered: u64,
    /// Frames dropped at full client buffers.
    pub frames_dropped: u64,
    /// Clients disconnected (evicted as slow, finished, or died).
    pub clients_disconnected: u64,
    /// Wire bytes enqueued to clients (header + payload per frame).
    pub bytes_sent: u64,
    /// Largest per-client backlog observed at any point (frames).
    pub max_client_lag: usize,
    /// Slot deadlines overrun by injected engine faults.
    pub overruns: u64,
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
    /// Broadcast rate actually achieved.
    pub slots_per_sec: f64,
    /// Slot-arbiter accounting (all zero on push-only runs).
    pub pull: PullStats,
}

/// Feeds one broadcast's delivery accounting into the engine counters.
/// The absorbed [`DeliveryStats`] are authoritative (the bus and TCP
/// layers report their own queue-level views separately), so frames are
/// never double-counted.
#[inline]
fn record_delivery(m: &crate::obs::EngineMetrics, stats: &DeliveryStats) {
    m.frames_delivered.add(stats.delivered);
    m.frames_dropped.add(stats.dropped);
    m.disconnects.add(stats.disconnected);
    m.bytes.add(stats.bytes);
}

/// How many slots before an epoch boundary the engine starts airing
/// announce fences (one per channel per tick), so every tuner — even one
/// straddling a channel switch — sees the swap coming.
const DEFAULT_FENCE_LEAD: u64 = 8;

/// Drives a [`BroadcastPlan`] over a transport in real time. Slot tick
/// `seq` airs one frame per channel (channel `c`'s frame is tagged with
/// `c` on the wire), so a `C`-channel plan moves `C` frames per tick.
///
/// With a plan *book* ([`BroadcastEngine::with_plan_book`]) the engine
/// hot-swaps to the next plan every `swap_every_cycles` broadcast cycles:
/// the swap lands exactly on a cycle boundary, is announced `fence_lead`
/// slots ahead by out-of-band [`Slot::EpochFence`] frames, and every data
/// frame is tagged with its plan epoch on the wire so clients never
/// mis-map a page-to-slot arrival across the boundary. A single-plan
/// engine (epoch 0 forever) airs no fences and stays byte-identical to
/// the pre-epoch wire.
pub struct BroadcastEngine {
    plans: Vec<BroadcastPlan>,
    swap_every_cycles: u64,
    fence_lead: u64,
    cfg: EngineConfig,
    pull: PullConfig,
    checkpoint: Arc<EngineCheckpoint>,
}

impl BroadcastEngine {
    /// Creates a single-channel engine for `program` with the given run
    /// parameters — identical to wrapping it in a one-channel plan.
    pub fn new(program: BroadcastProgram, cfg: EngineConfig) -> Self {
        Self::with_plan(BroadcastPlan::single(program), cfg)
    }

    /// Creates an engine broadcasting every channel of `plan` (a plan
    /// book of one: epoch 0 forever).
    pub fn with_plan(plan: BroadcastPlan, cfg: EngineConfig) -> Self {
        Self::with_plan_book(vec![plan], u64::MAX, cfg)
    }

    /// Creates an engine that airs `plans[0]`, then hot-swaps to each
    /// successive plan every `swap_every_cycles` cycles of the plan then
    /// current. Plan `i` is re-tagged with epoch `i` (the book is
    /// positional), so callers building plans out of a re-optimizer need
    /// not pre-assign epochs.
    pub fn with_plan_book(
        plans: Vec<BroadcastPlan>,
        swap_every_cycles: u64,
        cfg: EngineConfig,
    ) -> Self {
        assert!(!plans.is_empty(), "plan book must hold at least one plan");
        assert!(swap_every_cycles > 0, "swap cadence must be nonzero");
        let plans: Vec<BroadcastPlan> = plans
            .into_iter()
            .enumerate()
            .map(|(i, p)| p.with_epoch(i as u32))
            .collect();
        Self {
            plans,
            swap_every_cycles,
            fence_lead: DEFAULT_FENCE_LEAD,
            cfg,
            pull: PullConfig::default(),
            checkpoint: Arc::new(EngineCheckpoint::default()),
        }
    }

    /// Overrides the announce-fence lead (slots before a swap boundary).
    pub fn with_fence_lead(mut self, fence_lead: u64) -> Self {
        self.fence_lead = fence_lead;
        self
    }

    /// Enables hybrid push/pull: each tick the scheduled slot is routed
    /// through a [`SlotArbiter`] that may substitute on-demand
    /// [`Slot::Pull`] airings serviced from the transport's upstream
    /// request queue. [`PullMode::Off`] (the default) bypasses the
    /// arbiter entirely — the wire output is byte-identical to a
    /// pull-less engine, and the transport's request path is never
    /// polled.
    pub fn with_pull(mut self, pull: PullConfig) -> Self {
        self.pull = pull;
        self
    }

    /// The live checkpoint handle. Clone the `Arc` before `run` and
    /// [`EngineCheckpoint::snapshot`] it after a crash/kill to build the
    /// [`EngineConfig::resume`] for a replacement engine.
    pub fn checkpoint(&self) -> Arc<EngineCheckpoint> {
        Arc::clone(&self.checkpoint)
    }

    /// Channel 0's program (the whole broadcast on a single-channel plan).
    pub fn program(&self) -> &BroadcastProgram {
        self.plans[0].program(ChannelId(0))
    }

    /// The initial (epoch-0) plan.
    pub fn plan(&self) -> &BroadcastPlan {
        &self.plans[0]
    }

    /// Broadcasts slots until `max_slots` is reached or (when configured)
    /// no clients remain, then finishes the transport. Slot `seq` is sent
    /// at wall-clock time `start + seq * slot_duration`; if the transport
    /// is slower than the slot rate the engine runs behind rather than
    /// skipping slots (every client still sees a gap-free feed).
    ///
    /// With a multi-plan book, epoch `e+1` takes over from epoch `e` at
    /// the cycle boundary `base_e + swap_every_cycles * period_e`; the
    /// engine airs announce fences for `fence_lead` slots beforehand and
    /// a refresh fence at every cycle start while the active epoch is
    /// nonzero (late joiners resync within one cycle). A resumed run
    /// ([`EngineConfig::resume`]) continues the global slot clock from
    /// the checkpoint instead of slot 0.
    pub fn run<T: Transport>(&self, transport: &mut T) -> EngineReport {
        let start = Instant::now();
        let mut totals = DeliveryStats::default();
        let mut slots_sent = 0u64;
        let mut overruns = 0u64;
        let mut no_client_slots = 0u64;
        let mut killed = false;
        let m = crate::obs::engine();
        let em = crate::obs::epoch_metrics();
        // One payload buffer per page for the whole run; every frame (and
        // every subscriber) shares it by refcount. Pages are plan-global,
        // so one buffer set serves every channel and every epoch.
        let max_pages = self.plans.iter().map(|p| p.num_pages()).max().unwrap();
        let payloads = PagePayloads::generate(max_pages, self.cfg.page_size);
        // Coded plans air parity symbols from a precomputed table (one
        // shared buffer per symbol per channel per epoch); uncoded plans
        // never touch this path.
        let repair_by_epoch: Vec<_> = self
            .plans
            .iter()
            .map(|p| repair_tables(p, &payloads))
            .collect();
        let rm = crate::obs::repair();
        let channels = self.plans[0].num_channels();
        assert!(
            self.plans.iter().all(|p| p.num_channels() == channels),
            "every plan in the book must use the same channel count"
        );
        // Per-channel slot counters, materialized before the loop so the
        // steady state never touches the registry (or the allocator).
        let by_channel: Vec<_> = (0..channels as u16)
            .map(crate::obs::slots_by_channel)
            .collect();
        let stage_m = crate::obs::stage();

        // Epoch cursor: which plan is on the air and where its slot clock
        // starts. A resume picks the cursor up from the checkpoint.
        let (mut epoch, start_seq, mut base) = match self.cfg.resume {
            Some(r) => {
                assert!(
                    (r.epoch as usize) < self.plans.len(),
                    "resume epoch {} outside plan book of {}",
                    r.epoch,
                    self.plans.len()
                );
                assert_eq!(
                    self.plans[r.epoch as usize].plan_hash(),
                    r.plan_hash,
                    "resume checkpoint was taken against a different plan"
                );
                (r.epoch as usize, r.seq, r.base)
            }
            None => (0, 0, 0),
        };
        let mut cur = &self.plans[epoch];
        let mut next_boundary = (epoch + 1 < self.plans.len())
            .then(|| base + self.swap_every_cycles * cur.max_period() as u64);
        // The slot arbiter only exists when pull is on: push-only runs
        // take the exact pre-pull code path (no request polling, no
        // per-slot arbitration) and stay byte-identical on the wire.
        let mut arbiter = (self.pull.mode != PullMode::Off).then(|| {
            let mut a = SlotArbiter::new(self.pull, channels);
            a.on_plan_change(cur.coding().is_some());
            a
        });
        let mut req_buf: Vec<PullRequest> = Vec::new();
        em.plan_epoch.set(epoch as i64);
        self.checkpoint
            .store(epoch as u32, start_seq, base, cur.plan_hash());
        // A nonzero-epoch start (resume after a mid-book crash) installs
        // the current fence as the transport hello so reconnecting
        // clients learn (epoch, base) before their first data frame.
        // Epoch-0 fresh starts install nothing: byte-identical wire.
        if epoch > 0 {
            transport.set_hello(Some(Frame::fence(start_seq, 0, epoch as u32, base)));
        }

        for seq in start_seq.. {
            if seq - start_seq >= self.cfg.max_slots {
                break;
            }
            if self.cfg.stop_when_no_clients {
                if transport.active_clients() == 0 {
                    if no_client_slots >= self.cfg.no_client_grace_slots {
                        break;
                    }
                    no_client_slots += 1;
                } else {
                    no_client_slots = 0;
                }
            }
            // A deterministic broker kill: stop mid-air, leaving the
            // checkpoint pointing at this (never-aired) slot. The
            // experiment layer restarts a fresh engine from the snapshot.
            if self.cfg.fault_plan.broker_kill_slot != 0
                && seq == self.cfg.fault_plan.broker_kill_slot
            {
                event(
                    EventKind::FaultInjected,
                    seq,
                    crate::faults::FAULT_CODE_KILL,
                );
                killed = true;
                break;
            }
            // Hot-swap on the cycle boundary: the new epoch's clock
            // starts exactly here, and the refresh fence below (cycle
            // start of the new epoch) is the swap signal on the wire.
            if next_boundary == Some(seq) {
                epoch += 1;
                base = seq;
                cur = &self.plans[epoch];
                next_boundary = (epoch + 1 < self.plans.len())
                    .then(|| base + self.swap_every_cycles * cur.max_period() as u64);
                em.plan_epoch.set(epoch as i64);
                em.swaps.inc();
                event(EventKind::EpochSwap, epoch as u64, base);
                transport.set_hello(Some(Frame::fence(seq, 0, epoch as u32, base)));
                // Queued pull requests may reference pages that moved (or
                // vanished) under the new plan; drop them — clients
                // recover via the periodic schedule or by re-requesting.
                if let Some(a) = arbiter.as_mut() {
                    a.on_plan_change(cur.coding().is_some());
                }
            }
            // Drain the upstream backchannel into the arbiter before
            // deciding this tick's slots. `seq - 1` is the look-back
            // horizon: everything up to the previous tick is on the air.
            if let Some(a) = arbiter.as_mut() {
                transport.take_requests(&mut req_buf);
                for r in req_buf.drain(..) {
                    a.submit(r, cur, base, seq.saturating_sub(1));
                }
            }
            if !self.cfg.slot_duration.is_zero() {
                let deadline = start + self.cfg.slot_duration * (seq - start_seq) as u32;
                let now = Instant::now();
                if deadline > now {
                    std::thread::sleep(deadline - now);
                }
            }
            if self.cfg.fault_plan.overrun_at(seq) {
                // Miss this slot's deadline by one slot duration (a fixed
                // sliver when free-running). Deadlines are absolute, so
                // later slots re-align instead of inheriting the drift.
                overruns += 1;
                crate::faults::metrics().overruns.inc();
                event(EventKind::FaultInjected, seq, FAULT_CODE_OVERRUN);
                let stall = if self.cfg.slot_duration.is_zero() {
                    Duration::from_micros(100)
                } else {
                    self.cfg.slot_duration
                };
                std::thread::sleep(stall);
            }
            // Out-of-band fences, aired per channel *before* this tick's
            // data frames and sharing its seq. Refresh fences re-announce
            // the active (nonzero) epoch at every cycle start; announce
            // fences advertise the upcoming epoch for the last fence_lead
            // slots before its boundary. Epoch-0 single-plan runs skip
            // both branches entirely.
            let cycle_start = epoch > 0 && (seq - base) % cur.max_period() as u64 == 0;
            let announcing = next_boundary.is_some_and(|b| b - seq <= self.fence_lead && seq < b);
            if cycle_start || announcing {
                let (f_epoch, f_base) = if announcing {
                    ((epoch + 1) as u32, next_boundary.unwrap())
                } else {
                    (epoch as u32, base)
                };
                for c in 0..channels as u16 {
                    let stats = transport.broadcast(Frame::fence(seq, c, f_epoch, f_base));
                    record_delivery(m, &stats);
                    totals.absorb(stats);
                }
                em.fences.inc();
            }
            // Stage profile for sampled slots: tick jitter against the
            // absolute deadline, encode/enqueue split per channel below,
            // the transport's writev drain folded in at record time. One
            // relaxed load per slot when tracing is off; the clock is
            // only read on sampled slots.
            let stage_jitter = trace::sampled(seq).then(|| {
                if self.cfg.slot_duration.is_zero() {
                    0.0
                } else {
                    let deadline = start + self.cfg.slot_duration * (seq - start_seq) as u32;
                    Instant::now()
                        .checked_duration_since(deadline)
                        .map_or(0.0, |late| late.as_secs_f64() * 1e6)
                }
            });
            let (mut encode_us, mut enqueue_us) = (0.0f64, 0.0f64);
            m.slots.inc();
            let repair = &repair_by_epoch[epoch];
            for (c, counter) in by_channel.iter().enumerate() {
                let scheduled = cur.slot_at(ChannelId(c as u16), seq - base);
                let slot = match arbiter.as_mut() {
                    Some(a) => a.arbitrate(scheduled, ChannelId(c as u16), seq),
                    None => scheduled,
                };
                let encode_start = stage_jitter.is_some().then(Instant::now);
                let frame = match (slot, repair) {
                    (Slot::Repair(r), Some(tables)) => {
                        rm.slots_aired.inc();
                        Frame {
                            seq,
                            channel: c as u16,
                            slot,
                            epoch: epoch as u32,
                            payload: Arc::clone(&tables[c][r.index()]),
                        }
                    }
                    _ => payloads
                        .frame_on(seq, c as u16, slot)
                        .with_epoch(epoch as u32),
                };
                let enqueue_start = encode_start.map(|t0| {
                    let now = Instant::now();
                    encode_us += now.duration_since(t0).as_secs_f64() * 1e6;
                    now
                });
                let stats = transport.broadcast(frame);
                if let Some(t0) = enqueue_start {
                    enqueue_us += t0.elapsed().as_secs_f64() * 1e6;
                }
                counter.inc();
                record_delivery(m, &stats);
                event(
                    EventKind::SlotTick,
                    seq,
                    match slot {
                        Slot::Page(page) => page.0 as u64,
                        Slot::Empty => u64::MAX,
                        // Distinct from both page ids and the empty
                        // sentinel: the wire encoding of the repair id.
                        Slot::Repair(r) => (REPAIR_FLAG | r.0) as u64,
                        // Never produced by a plan (fences are out of
                        // band), but the match stays total.
                        Slot::EpochFence => (1u64 << 33) | u32::MAX as u64,
                        // On-demand airing: same tag space as plan_hash.
                        Slot::Pull(page) => (1u64 << 34) | page.0 as u64,
                    },
                );
                totals.absorb(stats);
            }
            self.checkpoint
                .store(epoch as u32, seq + 1, base, cur.plan_hash());
            if let Some(jitter_us) = stage_jitter {
                // Drain micros accumulated since the previous sampled slot
                // (socket flushes happen inside and between broadcasts, so
                // the attribution is to the sampling window, not this slot
                // alone).
                let drain_us = trace::take_drain_micros() as f64;
                stage_m.jitter.record(jitter_us as u64);
                stage_m.encode.record(encode_us as u64);
                stage_m.enqueue.record(enqueue_us as u64);
                stage_m.drain.record(drain_us as u64);
                trace::record_stage(seq, [jitter_us, encode_us, enqueue_us, drain_us]);
            }
            m.active_clients.set(transport.active_clients() as i64);
            slots_sent = seq + 1 - start_seq;
        }
        // A batching transport may hold undelivered frames; their stats
        // arrive with the final flush. A *killed* broker vanishes
        // mid-stream instead: no flush, no teardown — the transport stays
        // live for the restart harness to sever connections and hand to a
        // resumed engine (a crashed process never runs its shutdown path).
        let tail = if killed {
            DeliveryStats::default()
        } else {
            transport.finish()
        };
        record_delivery(m, &tail);
        totals.absorb(tail);
        m.active_clients.set(transport.active_clients() as i64);
        m.max_client_lag.set_max(totals.max_queue as i64);

        let elapsed = start.elapsed();
        EngineReport {
            slots_sent,
            major_cycles: slots_sent / self.plans[0].max_period() as u64,
            frames_delivered: totals.delivered,
            frames_dropped: totals.dropped,
            clients_disconnected: totals.disconnected,
            bytes_sent: totals.bytes,
            max_client_lag: totals.max_queue,
            overruns,
            elapsed,
            slots_per_sec: if elapsed.as_secs_f64() > 0.0 {
                slots_sent as f64 / elapsed.as_secs_f64()
            } else {
                f64::INFINITY
            },
            pull: arbiter.map(|a| a.stats()).unwrap_or_default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bus::InMemoryBus;
    use crate::transport::Backpressure;
    use bdisk_sched::DiskLayout;

    fn program() -> BroadcastProgram {
        let layout = DiskLayout::with_delta(&[4, 8, 12], 2).unwrap();
        BroadcastProgram::generate(&layout).unwrap()
    }

    #[test]
    fn free_run_sends_exactly_max_slots() {
        let program = program();
        let period = program.period() as u64;
        let engine = BroadcastEngine::new(
            program,
            EngineConfig {
                max_slots: period * 3,
                stop_when_no_clients: false,
                ..EngineConfig::default()
            },
        );
        let mut bus = InMemoryBus::new(16, Backpressure::DropNewest);
        let report = engine.run(&mut bus);
        assert_eq!(report.slots_sent, period * 3);
        assert_eq!(report.major_cycles, 3);
        assert_eq!(report.frames_delivered, 0); // no subscribers
        assert!(report.slots_per_sec > 0.0);
    }

    #[test]
    fn stops_when_last_client_leaves() {
        let engine = BroadcastEngine::new(program(), EngineConfig::default());
        let mut bus = InMemoryBus::new(4, Backpressure::Disconnect);
        let _sub = bus.subscribe(); // never drained: evicted once the buffer fills
        let report = engine.run(&mut bus);
        assert_eq!(report.clients_disconnected, 1);
        // 4 delivered into the buffer, the 5th evicts, then no clients.
        assert_eq!(report.frames_delivered, 4);
        assert!(report.slots_sent <= 6);
    }

    #[test]
    fn frames_carry_shared_page_payloads() {
        let program = program();
        let engine = BroadcastEngine::new(
            program,
            EngineConfig {
                max_slots: 10,
                stop_when_no_clients: false,
                page_size: 32,
                ..EngineConfig::default()
            },
        );
        let mut bus = InMemoryBus::new(16, Backpressure::DropNewest);
        let mut sub = bus.subscribe();
        let report = engine.run(&mut bus);
        assert_eq!(report.slots_sent, 10);
        let mut bytes = 0u64;
        while let Some(frame) = sub.recv() {
            match frame.slot {
                bdisk_sched::Slot::Page(_) => {
                    assert_eq!(frame.payload.len(), 32, "page frames carry PageSize bytes")
                }
                bdisk_sched::Slot::Empty | bdisk_sched::Slot::Repair(_) => {
                    assert!(frame.payload.is_empty())
                }
                bdisk_sched::Slot::EpochFence => unreachable!("single-plan runs air no fences"),
                bdisk_sched::Slot::Pull(_) => unreachable!("pull is off by default"),
            }
            bytes += frame.wire_len() as u64;
        }
        assert_eq!(report.bytes_sent, bytes);
        assert!(bytes > 0);
    }

    #[test]
    fn repair_frames_carry_symbol_xor_payloads() {
        use bdisk_sched::CodingConfig;
        let layout = DiskLayout::with_delta(&[4, 8, 12], 2).unwrap();
        let plan = BroadcastPlan::generate(&layout, 1)
            .unwrap()
            .with_coding(CodingConfig::xor(0.15, 4, 7))
            .unwrap();
        assert!(plan.repair_slots_of(ChannelId(0)) > 0);
        let period = plan.max_period() as u64;
        let engine = BroadcastEngine::with_plan(
            plan.clone(),
            EngineConfig {
                max_slots: period,
                stop_when_no_clients: false,
                page_size: 32,
                ..EngineConfig::default()
            },
        );
        let mut bus = InMemoryBus::new(4096, Backpressure::DropNewest);
        let mut sub = bus.subscribe();
        let report = engine.run(&mut bus);
        assert_eq!(report.slots_sent, period);

        let payloads = PagePayloads::generate(plan.num_pages(), 32);
        let ch = ChannelId(0);
        let code = ChannelCode::build(plan.program(ch), 0, plan.coding().unwrap());
        let mut repair_frames = 0usize;
        while let Some(frame) = sub.recv() {
            if let Slot::Repair(id) = frame.slot {
                let spec = code.symbol(id).unwrap();
                let mut expect = vec![0u8; 32];
                for &(_, local) in &spec.covers {
                    bdisk_code::xor_into(&mut expect, payloads.page(plan.global_page(ch, local)));
                }
                assert_eq!(&frame.payload[..], &expect[..]);
                repair_frames += 1;
            }
        }
        assert_eq!(repair_frames, plan.repair_slots_of(ch));
    }

    #[test]
    fn grace_slots_keep_broadcasting_through_zero_clients() {
        let engine = BroadcastEngine::new(
            program(),
            EngineConfig {
                no_client_grace_slots: 5,
                ..EngineConfig::default()
            },
        );
        // No subscribers at all: the engine still ticks out the grace
        // window before concluding the fleet is gone for good.
        let mut bus = InMemoryBus::new(4, Backpressure::DropNewest);
        let report = engine.run(&mut bus);
        assert_eq!(report.slots_sent, 5);
        assert_eq!(report.overruns, 0);
    }

    #[test]
    fn overruns_delay_slots_without_drifting_the_clock() {
        use crate::faults::FaultPlan;
        let engine = BroadcastEngine::new(
            program(),
            EngineConfig {
                max_slots: 10,
                slot_duration: Duration::from_millis(1),
                stop_when_no_clients: false,
                fault_plan: FaultPlan {
                    seed: 9,
                    overrun: 1.0,
                    ..FaultPlan::none()
                },
                ..EngineConfig::default()
            },
        );
        let mut bus = InMemoryBus::new(64, Backpressure::DropNewest);
        let report = engine.run(&mut bus);
        assert_eq!(report.slots_sent, 10);
        assert_eq!(report.overruns, 10);
        // Every slot stalls one extra slot-duration past its absolute
        // deadline, but deadlines never compound: the run takes about 2x
        // the schedule, not quadratically more.
        assert!(report.elapsed >= Duration::from_millis(10));
        assert!(report.elapsed < Duration::from_millis(250));
    }

    #[test]
    fn paced_run_takes_wall_clock_time() {
        let program = program();
        let engine = BroadcastEngine::new(
            program,
            EngineConfig {
                max_slots: 20,
                slot_duration: Duration::from_millis(1),
                stop_when_no_clients: false,
                ..EngineConfig::default()
            },
        );
        let mut bus = InMemoryBus::new(64, Backpressure::DropNewest);
        let report = engine.run(&mut bus);
        assert_eq!(report.slots_sent, 20);
        // Slot 19 is sent no earlier than 19ms in.
        assert!(report.elapsed >= Duration::from_millis(19));
        assert!(report.slots_per_sec <= 1100.0);
    }
}
