//! The broadcast engine: walks the program's slot sequence on a wall-clock
//! ticker and fans each slot out through a [`Transport`].

use std::time::{Duration, Instant};

use bdisk_obs::journal::{event, EventKind};
use bdisk_sched::{BroadcastProgram, Slot};

use crate::transport::{DeliveryStats, PagePayloads, Transport};

/// Engine run parameters.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Maximum slots to broadcast before stopping.
    pub max_slots: u64,
    /// Wall-clock duration of one slot. `Duration::ZERO` free-runs the
    /// broadcast as fast as the transport accepts frames.
    pub slot_duration: Duration,
    /// Stop early once every client has disconnected (or finished).
    pub stop_when_no_clients: bool,
    /// Bytes of page payload carried by each page frame (`PageSize`,
    /// paper Table 2). Payloads are generated once per run and shared by
    /// refcount across every subscriber. 0 sends bare frames.
    pub page_size: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            max_slots: u64::MAX,
            slot_duration: Duration::ZERO,
            stop_when_no_clients: true,
            page_size: 64,
        }
    }
}

/// What the engine did: slot throughput and aggregate delivery accounting.
#[derive(Debug, Clone)]
pub struct EngineReport {
    /// Slots broadcast before stopping.
    pub slots_sent: u64,
    /// Broadcast periods completed (`slots_sent / period`).
    pub major_cycles: u64,
    /// Frames successfully enqueued to clients, summed over slots.
    pub frames_delivered: u64,
    /// Frames dropped at full client buffers.
    pub frames_dropped: u64,
    /// Clients disconnected (evicted as slow, finished, or died).
    pub clients_disconnected: u64,
    /// Wire bytes enqueued to clients (header + payload per frame).
    pub bytes_sent: u64,
    /// Largest per-client backlog observed at any point (frames).
    pub max_client_lag: usize,
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
    /// Broadcast rate actually achieved.
    pub slots_per_sec: f64,
}

/// Feeds one broadcast's delivery accounting into the engine counters.
/// The absorbed [`DeliveryStats`] are authoritative (the bus and TCP
/// layers report their own queue-level views separately), so frames are
/// never double-counted.
#[inline]
fn record_delivery(m: &crate::obs::EngineMetrics, stats: &DeliveryStats) {
    m.frames_delivered.add(stats.delivered);
    m.frames_dropped.add(stats.dropped);
    m.disconnects.add(stats.disconnected);
    m.bytes.add(stats.bytes);
}

/// Drives a [`BroadcastProgram`] over a transport in real time.
pub struct BroadcastEngine {
    program: BroadcastProgram,
    cfg: EngineConfig,
}

impl BroadcastEngine {
    /// Creates an engine for `program` with the given run parameters.
    pub fn new(program: BroadcastProgram, cfg: EngineConfig) -> Self {
        Self { program, cfg }
    }

    /// The program being broadcast.
    pub fn program(&self) -> &BroadcastProgram {
        &self.program
    }

    /// Broadcasts slots until `max_slots` is reached or (when configured)
    /// no clients remain, then finishes the transport. Slot `seq` is sent
    /// at wall-clock time `start + seq * slot_duration`; if the transport
    /// is slower than the slot rate the engine runs behind rather than
    /// skipping slots (every client still sees a gap-free feed).
    pub fn run<T: Transport>(&self, transport: &mut T) -> EngineReport {
        let start = Instant::now();
        let mut totals = DeliveryStats::default();
        let mut slots_sent = 0u64;
        let m = crate::obs::engine();
        // One payload buffer per page for the whole run; every frame (and
        // every subscriber) shares it by refcount.
        let payloads = PagePayloads::generate(self.program.num_pages(), self.cfg.page_size);

        for (seq, slot) in self.program.slots_from(0) {
            if seq >= self.cfg.max_slots {
                break;
            }
            if self.cfg.stop_when_no_clients && transport.active_clients() == 0 {
                break;
            }
            if !self.cfg.slot_duration.is_zero() {
                let deadline = start + self.cfg.slot_duration * seq as u32;
                let now = Instant::now();
                if deadline > now {
                    std::thread::sleep(deadline - now);
                }
            }
            let stats = transport.broadcast(payloads.frame(seq, slot));
            m.slots.inc();
            record_delivery(m, &stats);
            event(
                EventKind::SlotTick,
                seq,
                match slot {
                    Slot::Page(page) => page.0 as u64,
                    Slot::Empty => u64::MAX,
                },
            );
            totals.absorb(stats);
            m.active_clients.set(transport.active_clients() as i64);
            slots_sent = seq + 1;
        }
        // A batching transport may hold undelivered frames; their stats
        // arrive with the final flush.
        let tail = transport.finish();
        record_delivery(m, &tail);
        totals.absorb(tail);
        m.active_clients.set(transport.active_clients() as i64);
        m.max_client_lag.set_max(totals.max_queue as i64);

        let elapsed = start.elapsed();
        EngineReport {
            slots_sent,
            major_cycles: slots_sent / self.program.period() as u64,
            frames_delivered: totals.delivered,
            frames_dropped: totals.dropped,
            clients_disconnected: totals.disconnected,
            bytes_sent: totals.bytes,
            max_client_lag: totals.max_queue,
            elapsed,
            slots_per_sec: if elapsed.as_secs_f64() > 0.0 {
                slots_sent as f64 / elapsed.as_secs_f64()
            } else {
                f64::INFINITY
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bus::InMemoryBus;
    use crate::transport::Backpressure;
    use bdisk_sched::DiskLayout;

    fn program() -> BroadcastProgram {
        let layout = DiskLayout::with_delta(&[4, 8, 12], 2).unwrap();
        BroadcastProgram::generate(&layout).unwrap()
    }

    #[test]
    fn free_run_sends_exactly_max_slots() {
        let program = program();
        let period = program.period() as u64;
        let engine = BroadcastEngine::new(
            program,
            EngineConfig {
                max_slots: period * 3,
                stop_when_no_clients: false,
                ..EngineConfig::default()
            },
        );
        let mut bus = InMemoryBus::new(16, Backpressure::DropNewest);
        let report = engine.run(&mut bus);
        assert_eq!(report.slots_sent, period * 3);
        assert_eq!(report.major_cycles, 3);
        assert_eq!(report.frames_delivered, 0); // no subscribers
        assert!(report.slots_per_sec > 0.0);
    }

    #[test]
    fn stops_when_last_client_leaves() {
        let engine = BroadcastEngine::new(program(), EngineConfig::default());
        let mut bus = InMemoryBus::new(4, Backpressure::Disconnect);
        let _sub = bus.subscribe(); // never drained: evicted once the buffer fills
        let report = engine.run(&mut bus);
        assert_eq!(report.clients_disconnected, 1);
        // 4 delivered into the buffer, the 5th evicts, then no clients.
        assert_eq!(report.frames_delivered, 4);
        assert!(report.slots_sent <= 6);
    }

    #[test]
    fn frames_carry_shared_page_payloads() {
        let program = program();
        let engine = BroadcastEngine::new(
            program,
            EngineConfig {
                max_slots: 10,
                stop_when_no_clients: false,
                page_size: 32,
                ..EngineConfig::default()
            },
        );
        let mut bus = InMemoryBus::new(16, Backpressure::DropNewest);
        let mut sub = bus.subscribe();
        let report = engine.run(&mut bus);
        assert_eq!(report.slots_sent, 10);
        let mut bytes = 0u64;
        while let Some(frame) = sub.recv() {
            match frame.slot {
                bdisk_sched::Slot::Page(_) => {
                    assert_eq!(frame.payload.len(), 32, "page frames carry PageSize bytes")
                }
                bdisk_sched::Slot::Empty => assert!(frame.payload.is_empty()),
            }
            bytes += frame.wire_len() as u64;
        }
        assert_eq!(report.bytes_sent, bytes);
        assert!(bytes > 0);
    }

    #[test]
    fn paced_run_takes_wall_clock_time() {
        let program = program();
        let engine = BroadcastEngine::new(
            program,
            EngineConfig {
                max_slots: 20,
                slot_duration: Duration::from_millis(1),
                stop_when_no_clients: false,
                ..EngineConfig::default()
            },
        );
        let mut bus = InMemoryBus::new(64, Backpressure::DropNewest);
        let report = engine.run(&mut bus);
        assert_eq!(report.slots_sent, 20);
        // Slot 19 is sent no earlier than 19ms in.
        assert!(report.elapsed >= Duration::from_millis(19));
        assert!(report.slots_per_sec <= 1100.0);
    }
}
