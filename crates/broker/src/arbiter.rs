//! The slot arbiter: the layer between "what the plan schedules" and
//! "what actually goes on the air".
//!
//! A push-only engine replays its [`bdisk_sched::BroadcastPlan`] verbatim.
//! With pull enabled, each tick's scheduled slot is routed through a
//! [`SlotArbiter`] first, which may substitute an on-demand
//! [`Slot::Pull`] airing serviced from a queue of upstream
//! [`PullRequest`]s:
//!
//! * **Padding fill** — `Slot::Empty` padding is free bandwidth; the
//!   arbiter always prefers servicing the pull queue over airing dead
//!   air. This never perturbs push traffic at all.
//! * **Fixed-ratio stealing** ([`PullMode::FixedRatio`]) — additionally,
//!   a fixed fraction of scheduled *data* slots may be displaced by pull
//!   airings, paced by a per-channel credit accumulator.
//! * **Adaptive stealing** ([`PullMode::Adaptive`]) — the steal ratio
//!   scales with current queue depth, so a quiet backchannel costs
//!   nothing and a storm of cold-page misses is worked off quickly.
//!
//! Repair and fence slots are never displaced, and stealing disables
//! itself entirely on coded plans (displacing an airing would silently
//! break the coverage windows the decoder XORs against). With
//! [`PullMode::Off`] the arbiter is the identity function — the engine's
//! output is byte-identical to a pull-less broker, pinned by proptest in
//! `tests/pull_equivalence.rs`.
//!
//! Queue discipline is FIFO over pages with per-page waiter lists
//! (duplicate requests for a page in flight coalesce into one airing).
//! Two rules keep the queue honest against the periodic schedule:
//!
//! * **Look-back drop at submit** — if the page's periodic broadcast
//!   already aired at or after the request's `min_seq`, the client has
//!   it; the request is stale (a race with the downstream feed) and is
//!   dropped.
//! * **Cancellation on push airing** — when a scheduled airing of a
//!   queued page actually goes out (not stolen), every waiter eligible
//!   to receive it (`min_seq <= seq`) is satisfied by the push and
//!   leaves the queue.

use std::collections::{HashMap, VecDeque};

use bdisk_sched::{BroadcastPlan, ChannelId, PageId, Slot};

use crate::obs;
use crate::transport::PullRequest;

/// How aggressively pull traffic competes with the push schedule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PullMode {
    /// No pull at all: the arbiter is bypassed and the wire output is
    /// byte-identical to a pull-less engine.
    Off,
    /// Service the pull queue from `Slot::Empty` padding only; scheduled
    /// data slots are never displaced.
    PaddingFill,
    /// Padding fill, plus displace up to this fraction of scheduled data
    /// slots (0.0..1.0) with pull airings, paced by a credit accumulator.
    FixedRatio(f64),
    /// Padding fill, plus steal at a ratio that scales linearly with
    /// queue depth: `max_ratio · min(1, depth / depth_target)`. Idle
    /// backchannels cost nothing; deep queues are worked off at up to
    /// `max_ratio`.
    Adaptive {
        /// Steal ratio when the queue is at or beyond `depth_target`.
        max_ratio: f64,
        /// Queue depth (waiters) at which stealing reaches `max_ratio`.
        depth_target: usize,
    },
}

/// Configuration for the engine's pull path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PullConfig {
    /// Arbitration mode.
    pub mode: PullMode,
    /// Cap on queued waiters across all channels; requests beyond it are
    /// rejected (and counted) rather than buffered without bound.
    pub max_queue: usize,
}

impl Default for PullConfig {
    fn default() -> Self {
        Self {
            mode: PullMode::Off,
            max_queue: 4096,
        }
    }
}

/// Aggregate arbiter accounting, reported through `EngineReport`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PullStats {
    /// Requests accepted into the queue.
    pub requests: u64,
    /// Requests dropped: unknown page, stale (periodic schedule already
    /// satisfied them), or queue full.
    pub rejected: u64,
    /// Waiters satisfied by a scheduled push airing of their page before
    /// any pull slot was spent on them.
    pub satisfied_by_push: u64,
    /// Pull airings substituted into the broadcast (padding + stolen).
    pub pull_slots: u64,
    /// Pull airings that filled empty padding slots.
    pub padding_slots: u64,
    /// Pull airings that displaced scheduled data slots.
    pub stolen_slots: u64,
    /// Worst single-request wait from enqueue to airing, in slots.
    pub max_wait: u64,
}

/// Per-user pull service accounting — the "fair to users, not items"
/// view: each user's own waits, independent of which pages they share
/// with other users.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct UserPullStats {
    /// Requests of this user serviced by a pull airing.
    pub served: u64,
    /// Total slots this user's serviced requests waited in the queue.
    pub total_wait: u64,
    /// Worst single-request wait for this user, in slots.
    pub max_wait: u64,
}

#[derive(Debug, Clone, Copy)]
struct Waiter {
    user: u32,
    min_seq: u64,
    enqueued_at: u64,
}

#[derive(Debug)]
struct PullEntry {
    page: PageId,
    waiters: Vec<Waiter>,
}

/// The slot arbiter. One per engine run; see the module docs for the
/// arbitration rules.
#[derive(Debug)]
pub struct SlotArbiter {
    mode: PullMode,
    max_queue: usize,
    /// Stealing is disabled wholesale on coded plans: displacing an
    /// airing would corrupt the repair symbols' coverage windows.
    allow_steal: bool,
    queues: Vec<VecDeque<PullEntry>>,
    credit: Vec<f64>,
    /// Total waiters across all channels.
    depth: usize,
    stats: PullStats,
    users: HashMap<u32, UserPullStats>,
}

impl SlotArbiter {
    /// An arbiter for a `channels`-wide broadcast under `cfg`.
    pub fn new(cfg: PullConfig, channels: usize) -> Self {
        Self {
            mode: cfg.mode,
            max_queue: cfg.max_queue,
            allow_steal: !matches!(cfg.mode, PullMode::Off | PullMode::PaddingFill),
            queues: (0..channels).map(|_| VecDeque::new()).collect(),
            credit: vec![0.0; channels],
            depth: 0,
            stats: PullStats::default(),
            users: HashMap::new(),
        }
    }

    /// Whether any pull servicing is enabled.
    pub fn enabled(&self) -> bool {
        self.mode != PullMode::Off
    }

    /// Waiters currently queued, across all channels.
    pub fn queue_depth(&self) -> usize {
        self.depth
    }

    /// Aggregate accounting so far.
    pub fn stats(&self) -> PullStats {
        self.stats
    }

    /// Per-user service accounting so far.
    pub fn user_stats(&self) -> &HashMap<u32, UserPullStats> {
        &self.users
    }

    /// Adapts the arbiter to a plan hot-swap: queued requests are
    /// dropped (their pages may not even exist under the new plan;
    /// clients recover via the periodic schedule or by re-requesting),
    /// steal credit resets, and stealing is disabled when the incoming
    /// plan carries coded repair slots.
    pub fn on_plan_change(&mut self, coded: bool) {
        for q in &mut self.queues {
            q.clear();
        }
        self.credit.iter_mut().for_each(|c| *c = 0.0);
        self.depth = 0;
        self.allow_steal = !coded && !matches!(self.mode, PullMode::Off | PullMode::PaddingFill);
        obs::pull().queue_depth.set(0);
    }

    /// Enqueues one upstream request. `base` is the current plan's
    /// slot-clock base and `last_aired` the most recent slot seq already
    /// on the air — the look-back horizon for the stale-request drop.
    pub fn submit(&mut self, req: PullRequest, plan: &BroadcastPlan, base: u64, last_aired: u64) {
        if self.mode == PullMode::Off {
            return;
        }
        let m = obs::pull();
        if req.page.index() >= plan.num_pages() {
            self.stats.rejected += 1;
            m.rejected.inc();
            return;
        }
        // Look-back drop: the first periodic airing the requester was
        // eligible for (at or after its min_seq) has already gone out —
        // the downstream feed satisfied this request while it was in
        // flight upstream.
        let local_min = req.min_seq.saturating_sub(base) as f64;
        let arrival = plan.next_arrival(req.page, local_min) + base as f64;
        if arrival <= last_aired as f64 {
            self.stats.rejected += 1;
            m.rejected.inc();
            return;
        }
        if self.depth >= self.max_queue {
            self.stats.rejected += 1;
            m.rejected.inc();
            return;
        }
        let channel = plan.channel_of(req.page);
        let waiter = Waiter {
            user: req.user,
            min_seq: req.min_seq,
            enqueued_at: last_aired,
        };
        let q = &mut self.queues[channel.index()];
        match q.iter_mut().find(|e| e.page == req.page) {
            Some(entry) => entry.waiters.push(waiter),
            None => q.push_back(PullEntry {
                page: req.page,
                waiters: vec![waiter],
            }),
        }
        self.depth += 1;
        self.stats.requests += 1;
        m.requests.inc();
        m.queue_depth.set(self.depth as i64);
    }

    /// Decides what actually airs on `channel` at slot `seq`, given the
    /// plan's scheduled `push` slot. Returns either `push` unchanged or
    /// a [`Slot::Pull`] substitution.
    pub fn arbitrate(&mut self, push: Slot, channel: ChannelId, seq: u64) -> Slot {
        if self.mode == PullMode::Off {
            return push;
        }
        match push {
            Slot::Empty => match self.serve(channel, seq, false) {
                Some(page) => Slot::Pull(page),
                None => Slot::Empty,
            },
            Slot::Page(page) => {
                if self.allow_steal && self.depth > 0 {
                    let ratio = self.steal_ratio();
                    let c = &mut self.credit[channel.index()];
                    *c = (*c + ratio).min(1.0);
                    if *c >= 1.0 {
                        if let Some(pulled) = self.serve(channel, seq, true) {
                            self.credit[channel.index()] -= 1.0;
                            return Slot::Pull(pulled);
                        }
                    }
                }
                self.cancel_on_push(channel, page, seq);
                Slot::Page(page)
            }
            // Repair symbols and fences are never displaced: coded
            // coverage windows and epoch hand-off depend on them airing
            // exactly as scheduled.
            other => other,
        }
    }

    /// Current steal ratio (slots per data slot).
    fn steal_ratio(&self) -> f64 {
        match self.mode {
            PullMode::FixedRatio(r) => r,
            PullMode::Adaptive {
                max_ratio,
                depth_target,
            } => max_ratio * (self.depth as f64 / depth_target.max(1) as f64).min(1.0),
            PullMode::Off | PullMode::PaddingFill => 0.0,
        }
    }

    /// Services the first queue entry with an eligible waiter on
    /// `channel` (FIFO over pages), completing every waiter that can
    /// receive slot `seq`. Entries whose waiters are all still inside a
    /// retune penalty window are skipped, not starved: they stay in
    /// place and become eligible once `seq` reaches their `min_seq`.
    fn serve(&mut self, channel: ChannelId, seq: u64, stolen: bool) -> Option<PageId> {
        let q = &mut self.queues[channel.index()];
        let idx = q
            .iter()
            .position(|e| e.waiters.iter().any(|w| w.min_seq <= seq))?;
        let m = obs::pull();
        let page = q[idx].page;
        let mut completed = 0usize;
        let entry = &mut q[idx];
        let mut kept = Vec::with_capacity(entry.waiters.len());
        for w in entry.waiters.drain(..) {
            if w.min_seq > seq {
                kept.push(w);
                continue;
            }
            completed += 1;
            let wait = seq.saturating_sub(w.enqueued_at);
            self.stats.max_wait = self.stats.max_wait.max(wait);
            m.wait.record(wait);
            m.user_max_wait.set_max(wait as i64);
            let u = self.users.entry(w.user).or_default();
            u.served += 1;
            u.total_wait += wait;
            u.max_wait = u.max_wait.max(wait);
        }
        entry.waiters = kept;
        if entry.waiters.is_empty() {
            q.remove(idx);
        }
        self.depth -= completed;
        self.stats.pull_slots += 1;
        m.slots.inc();
        if stolen {
            self.stats.stolen_slots += 1;
            m.stolen_slots.inc();
        } else {
            self.stats.padding_slots += 1;
            m.padding_slots.inc();
        }
        m.queue_depth.set(self.depth as i64);
        Some(page)
    }

    /// A scheduled airing of `page` is actually going out on `channel`
    /// at `seq`: every waiter eligible to receive it is satisfied by the
    /// push and leaves the queue.
    fn cancel_on_push(&mut self, channel: ChannelId, page: PageId, seq: u64) {
        let q = &mut self.queues[channel.index()];
        let Some(idx) = q.iter().position(|e| e.page == page) else {
            return;
        };
        let entry = &mut q[idx];
        let before = entry.waiters.len();
        entry.waiters.retain(|w| w.min_seq > seq);
        let cancelled = before - entry.waiters.len();
        if entry.waiters.is_empty() {
            q.remove(idx);
        }
        if cancelled > 0 {
            self.depth -= cancelled;
            self.stats.satisfied_by_push += cancelled as u64;
            obs::pull().queue_depth.set(self.depth as i64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bdisk_sched::{BroadcastProgram, PageId};

    /// Plan: single channel `A B - A C -` → pages A(0) hot, B(1), C(2),
    /// padding at offsets 2 and 5.
    fn plan() -> BroadcastPlan {
        let slots = vec![
            Slot::Page(PageId(0)),
            Slot::Page(PageId(1)),
            Slot::Empty,
            Slot::Page(PageId(0)),
            Slot::Page(PageId(2)),
            Slot::Empty,
        ];
        BroadcastPlan::single(BroadcastProgram::from_slots(slots, None, vec![]).unwrap())
    }

    fn req(user: u32, page: u32, min_seq: u64) -> PullRequest {
        PullRequest {
            user,
            page: PageId(page),
            min_seq,
        }
    }

    fn padding_arbiter() -> SlotArbiter {
        SlotArbiter::new(
            PullConfig {
                mode: PullMode::PaddingFill,
                max_queue: 64,
            },
            1,
        )
    }

    /// Runs the arbiter over the plan's feed, returning the first
    /// `n` emitted slots.
    fn feed(a: &mut SlotArbiter, p: &BroadcastPlan, from: u64, n: u64) -> Vec<Slot> {
        (from..from + n)
            .map(|seq| a.arbitrate(p.slot_at(ChannelId(0), seq), ChannelId(0), seq))
            .collect()
    }

    #[test]
    fn padding_fill_serves_at_next_empty_slot() {
        let p = plan();
        let mut a = padding_arbiter();
        // Miss for C at seq 0 → first padding slot is seq 2.
        a.submit(req(1, 2, 1), &p, 0, 0);
        let out = feed(&mut a, &p, 1, 4);
        assert_eq!(out[1], Slot::Pull(PageId(2))); // seq 2
        assert_eq!(out[0], p.slot_at(ChannelId(0), 1)); // untouched
        assert_eq!(a.queue_depth(), 0);
        assert_eq!(a.stats().padding_slots, 1);
        assert_eq!(a.stats().max_wait, 2);
    }

    #[test]
    fn push_airing_cancels_eligible_waiters() {
        let p = plan();
        let mut a = padding_arbiter();
        // Request for B (airs periodically at seq 1, 7, ...) submitted
        // after seq 1: the next push airing at seq 7 satisfies it before
        // any padding slot does... except padding at 2 and 5 come first.
        // Use page A (airs at 3): request at seq 1 with min_seq 2 —
        // padding at 2 could serve it, but suppose the queue is behind
        // C. FIFO: C first (submitted earlier).
        a.submit(req(1, 2, 1), &p, 0, 0); // C
        a.submit(req(2, 0, 2), &p, 0, 1); // A, eligible from 2
        assert_eq!(a.queue_depth(), 2);
        let out = feed(&mut a, &p, 2, 2);
        // seq 2 (padding): FIFO serves C. seq 3: scheduled push of A
        // goes out and cancels A's waiter.
        assert_eq!(out[0], Slot::Pull(PageId(2)));
        assert_eq!(out[1], Slot::Page(PageId(0)));
        assert_eq!(a.queue_depth(), 0);
        assert_eq!(a.stats().satisfied_by_push, 1);
    }

    #[test]
    fn waiters_in_penalty_window_are_skipped_not_starved() {
        let p = plan();
        let mut a = padding_arbiter();
        // Retuning client: cannot receive before seq 11.
        a.submit(req(1, 2, 11), &p, 0, 0);
        // Seqs 1..=10 hold padding (2, 5, 8) and scheduled C airings
        // (4, 10) — all inside the penalty window, so none serve and
        // none cancel: the waiter is skipped, not starved or burned.
        let out = feed(&mut a, &p, 1, 10);
        assert!(out.iter().all(|s| !matches!(s, Slot::Pull(_))));
        assert_eq!(a.queue_depth(), 1);
        assert_eq!(a.stats().satisfied_by_push, 0);
        // Padding at seq 11 (offset 5 of cycle 1) finally serves it.
        let out = feed(&mut a, &p, 11, 1);
        assert_eq!(out[0], Slot::Pull(PageId(2))); // seq 11
    }

    #[test]
    fn duplicate_requests_coalesce_into_one_airing() {
        let p = plan();
        let mut a = padding_arbiter();
        a.submit(req(1, 2, 1), &p, 0, 0);
        a.submit(req(2, 2, 1), &p, 0, 0);
        a.submit(req(3, 2, 1), &p, 0, 0);
        assert_eq!(a.queue_depth(), 3);
        let out = feed(&mut a, &p, 1, 5);
        // One pull airing satisfies all three waiters; the second
        // padding slot (seq 5) stays empty.
        assert_eq!(out[1], Slot::Pull(PageId(2)));
        assert_eq!(out[4], Slot::Empty);
        assert_eq!(a.stats().pull_slots, 1);
        assert_eq!(a.queue_depth(), 0);
        assert_eq!(a.user_stats().len(), 3);
    }

    #[test]
    fn stale_requests_are_dropped_at_submit() {
        let p = plan();
        let mut a = padding_arbiter();
        // B aired at seq 1; a request eligible from seq 0 arriving after
        // seq 1 went out is stale — the client already has the page.
        a.submit(req(1, 1, 0), &p, 0, 3);
        assert_eq!(a.queue_depth(), 0);
        assert_eq!(a.stats().rejected, 1);
        // But a request whose eligibility starts after that airing
        // (retune penalty) is NOT stale: its next airing (seq 7) is
        // still ahead.
        a.submit(req(1, 1, 2), &p, 0, 3);
        assert_eq!(a.queue_depth(), 1);
    }

    #[test]
    fn unknown_pages_and_overflow_are_rejected() {
        let p = plan();
        let mut a = SlotArbiter::new(
            PullConfig {
                mode: PullMode::PaddingFill,
                max_queue: 2,
            },
            1,
        );
        a.submit(req(1, 99, 1), &p, 0, 0); // no such page
        assert_eq!(a.stats().rejected, 1);
        a.submit(req(1, 2, 1), &p, 0, 0);
        a.submit(req(2, 2, 1), &p, 0, 0);
        a.submit(req(3, 2, 1), &p, 0, 0); // over max_queue
        assert_eq!(a.queue_depth(), 2);
        assert_eq!(a.stats().rejected, 2);
    }

    #[test]
    fn fixed_ratio_steals_data_slots_at_the_configured_pace() {
        let p = plan();
        let mut a = SlotArbiter::new(
            PullConfig {
                mode: PullMode::FixedRatio(0.5),
                max_queue: 64,
            },
            1,
        );
        // Keep the queue saturated: staggered eligibility means each
        // airing of C completes only some waiters, so the entry persists.
        for u in 0..12 {
            a.submit(req(u, 2, u as u64 + 1), &p, 0, 0);
        }
        let out = feed(&mut a, &p, 1, 12); // two cycles
        let stolen = a.stats().stolen_slots;
        let padding = a.stats().padding_slots;
        assert!(stolen >= 2, "ratio 0.5 over 8 data slots must steal ≥2");
        assert!(padding >= 2, "padding still fills first");
        // Data slots displaced show up as Pull in place of Page.
        let pulls = out.iter().filter(|s| matches!(s, Slot::Pull(_))).count();
        assert_eq!(pulls as u64, stolen + padding);
    }

    #[test]
    fn adaptive_steals_nothing_when_queue_is_empty() {
        let p = plan();
        let mut a = SlotArbiter::new(
            PullConfig {
                mode: PullMode::Adaptive {
                    max_ratio: 0.5,
                    depth_target: 4,
                },
                max_queue: 64,
            },
            1,
        );
        let out = feed(&mut a, &p, 0, 12);
        assert_eq!(a.stats().pull_slots, 0);
        for (i, s) in out.iter().enumerate() {
            assert_eq!(*s, p.slot_at(ChannelId(0), i as u64), "slot {i}");
        }
    }

    #[test]
    fn off_mode_is_the_identity() {
        let p = plan();
        let mut a = SlotArbiter::new(PullConfig::default(), 1);
        assert!(!a.enabled());
        a.submit(req(1, 2, 1), &p, 0, 0); // ignored entirely
        assert_eq!(a.queue_depth(), 0);
        let out = feed(&mut a, &p, 0, 12);
        for (i, s) in out.iter().enumerate() {
            assert_eq!(*s, p.slot_at(ChannelId(0), i as u64), "slot {i}");
        }
        assert_eq!(a.stats(), PullStats::default());
    }

    #[test]
    fn plan_change_clears_the_queue_and_disables_steal_on_coded() {
        let p = plan();
        let mut a = SlotArbiter::new(
            PullConfig {
                mode: PullMode::FixedRatio(0.5),
                max_queue: 64,
            },
            1,
        );
        a.submit(req(1, 2, 1), &p, 0, 0);
        assert_eq!(a.queue_depth(), 1);
        a.on_plan_change(true);
        assert_eq!(a.queue_depth(), 0);
        // Coded plan: data slots are never displaced even at ratio 0.5.
        for u in 0..12 {
            a.submit(req(u, 2, 1), &p, 0, 0);
        }
        feed(&mut a, &p, 1, 12);
        assert_eq!(a.stats().stolen_slots, 0);
        assert!(a.stats().padding_slots > 0);
    }
}
