//! The TCP transport: length-prefixed page frames over real sockets.
//!
//! The server binds a loopback listener; an accept thread hands new
//! connections to the engine thread, which registers each one with a
//! bounded send buffer drained by a per-connection writer thread. A client
//! whose buffer fills is a slow consumer: depending on the configured
//! [`Backpressure`] its newest frames are dropped or it is disconnected
//! (blocking the whole broadcast on one slow socket is not offered here —
//! that is what [`crate::InMemoryBus`] with [`Backpressure::Block`] is for).
//!
//! The hot path is zero-copy on the server side: each slot's wire frame is
//! encoded **once** into a shared `Arc<[u8]>` and every connection's send
//! buffer holds a refcount to the same bytes. A writer that wakes up to a
//! backlog drains up to [`TcpTransportConfig::max_coalesce`] buffers and
//! pushes them with one vectored write instead of one syscall per frame.

use std::io::{self, IoSlice, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use bdisk_obs::journal::{event, EventKind};
use crossbeam::channel::{bounded, unbounded, Receiver, Sender, TrySendError};

use crate::transport::{Backpressure, DeliveryStats, Frame, Transport};

/// TCP transport tuning knobs.
#[derive(Debug, Clone)]
pub struct TcpTransportConfig {
    /// Frames buffered per connection before backpressure applies.
    pub queue_capacity: usize,
    /// Slow-consumer policy ([`Backpressure::Block`] is rejected at bind).
    pub backpressure: Backpressure,
    /// Most backlog frames a writer folds into one vectored write.
    pub max_coalesce: usize,
}

impl Default for TcpTransportConfig {
    fn default() -> Self {
        Self {
            queue_capacity: 256,
            backpressure: Backpressure::DropNewest,
            max_coalesce: 64,
        }
    }
}

/// Writes every buffer in order, coalescing them into vectored writes and
/// resuming correctly across partial writes.
fn write_coalesced<W: Write>(w: &mut W, bufs: &[Arc<[u8]>]) -> io::Result<()> {
    if let [single] = bufs {
        return w.write_all(single);
    }
    let total: usize = bufs.iter().map(|b| b.len()).sum();
    let mut written = 0usize;
    let mut slices: Vec<IoSlice<'_>> = Vec::with_capacity(bufs.len());
    while written < total {
        // Rebuild the slice list past what has already gone out; partial
        // writes are rare so the rebuild is off the common path.
        slices.clear();
        let mut skip = written;
        for buf in bufs {
            if skip >= buf.len() {
                skip -= buf.len();
                continue;
            }
            slices.push(IoSlice::new(&buf[skip..]));
            skip = 0;
        }
        let n = w.write_vectored(&slices)?;
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::WriteZero,
                "socket write returned zero",
            ));
        }
        written += n;
    }
    Ok(())
}

struct Conn {
    tx: Sender<Arc<[u8]>>,
    writer: JoinHandle<()>,
}

/// Broadcast server over loopback TCP.
pub struct TcpTransport {
    addr: SocketAddr,
    cfg: TcpTransportConfig,
    incoming: Receiver<TcpStream>,
    conns: Vec<Conn>,
    /// Writers of evicted connections, joined at finish.
    graveyard: Vec<JoinHandle<()>>,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl TcpTransport {
    /// Binds `127.0.0.1:0` and starts accepting connections.
    pub fn bind(cfg: TcpTransportConfig) -> io::Result<Self> {
        assert!(
            cfg.backpressure != Backpressure::Block,
            "TCP transport cannot block the broadcast on one socket; \
             use DropNewest or Disconnect"
        );
        assert!(cfg.queue_capacity > 0, "need send-buffer capacity");
        assert!(cfg.max_coalesce > 0, "writers must send at least one frame");
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let (tx, incoming) = unbounded();
        let stop_flag = Arc::clone(&stop);
        let accept_thread = std::thread::spawn(move || {
            for stream in listener.incoming() {
                if stop_flag.load(Ordering::SeqCst) {
                    break;
                }
                match stream {
                    Ok(s) => {
                        if tx.send(s).is_err() {
                            break;
                        }
                    }
                    Err(_) => break,
                }
            }
        });
        Ok(Self {
            addr,
            cfg,
            incoming,
            conns: Vec::new(),
            graveyard: Vec::new(),
            stop,
            accept_thread: Some(accept_thread),
        })
    }

    /// The address clients connect to.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Registers any connections the accept thread has queued; returns the
    /// current client count.
    pub fn poll_accept(&mut self) -> usize {
        let m = crate::obs::tcp();
        while let Ok(stream) = self.incoming.try_recv() {
            let _ = stream.set_nodelay(true);
            let (tx, rx) = bounded::<Arc<[u8]>>(self.cfg.queue_capacity);
            let max_coalesce = self.cfg.max_coalesce;
            let writer = std::thread::spawn(move || {
                let coalesce = crate::obs::tcp().coalesce_batch;
                let mut stream = stream;
                let mut bufs: Vec<Arc<[u8]>> = Vec::with_capacity(max_coalesce);
                while let Ok(first) = rx.recv() {
                    // Fold whatever backlog has accumulated into one
                    // vectored write.
                    bufs.clear();
                    bufs.push(first);
                    while bufs.len() < max_coalesce {
                        match rx.try_recv() {
                            Ok(buf) => bufs.push(buf),
                            Err(_) => break,
                        }
                    }
                    coalesce.record(bufs.len() as u64);
                    if write_coalesced(&mut stream, &bufs).is_err() {
                        break;
                    }
                }
                let _ = stream.shutdown(std::net::Shutdown::Both);
            });
            self.conns.push(Conn { tx, writer });
            m.accepted.inc();
        }
        m.connections.set(self.conns.len() as i64);
        self.conns.len()
    }

    /// Waits (polling) until at least `n` clients are connected. Returns
    /// `false` on timeout. Call before starting a run so no client misses
    /// the first slots.
    pub fn wait_for_clients(&mut self, n: usize, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        while self.poll_accept() < n {
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        true
    }
}

impl Transport for TcpTransport {
    fn broadcast(&mut self, frame: Frame) -> DeliveryStats {
        self.poll_accept();
        let mut stats = DeliveryStats::default();
        if self.conns.is_empty() {
            return stats;
        }
        // Encode once per slot; every connection's writer shares the bytes.
        let wire = frame.encode_shared();
        let m = crate::obs::tcp();
        let mut i = 0;
        while i < self.conns.len() {
            // Backlog sampled before the enqueue so max_queue reports the
            // peak including the frame in flight.
            let backlog = self.conns[i].tx.len();
            m.writer_backlog.record(backlog as u64);
            match self.conns[i].tx.try_send(Arc::clone(&wire)) {
                Ok(()) => {
                    stats.delivered += 1;
                    stats.bytes += wire.len() as u64;
                    stats.max_queue = stats.max_queue.max(backlog + 1);
                    i += 1;
                }
                Err(TrySendError::Full(_)) => match self.cfg.backpressure {
                    Backpressure::DropNewest => {
                        stats.dropped += 1;
                        stats.max_queue = stats.max_queue.max(backlog);
                        i += 1;
                    }
                    Backpressure::Disconnect | Backpressure::Block => {
                        // Evict in place: closing the channel lets the
                        // writer drain what is queued, then shut down.
                        stats.disconnected += 1;
                        event(EventKind::Disconnect, i as u64, 1);
                        let conn = self.conns.swap_remove(i);
                        drop(conn.tx);
                        self.graveyard.push(conn.writer);
                    }
                },
                Err(TrySendError::Disconnected(_)) => {
                    // Writer exited (peer closed or write error).
                    stats.disconnected += 1;
                    event(EventKind::Disconnect, i as u64, 0);
                    let conn = self.conns.swap_remove(i);
                    self.graveyard.push(conn.writer);
                }
            }
        }
        m.bytes.add(stats.bytes);
        m.frames_dropped.add(stats.dropped);
        m.disconnects.add(stats.disconnected);
        m.connections.set(self.conns.len() as i64);
        stats
    }

    fn active_clients(&self) -> usize {
        self.conns.len()
    }

    fn finish(&mut self) -> DeliveryStats {
        for conn in self.conns.drain(..) {
            drop(conn.tx);
            self.graveyard.push(conn.writer);
        }
        for writer in self.graveyard.drain(..) {
            let _ = writer.join();
        }
        if let Some(accept) = self.accept_thread.take() {
            self.stop.store(true, Ordering::SeqCst);
            // Wake the blocking accept so the thread observes the flag.
            let _ = TcpStream::connect(self.addr);
            let _ = accept.join();
        }
        crate::obs::tcp().connections.set(0);
        // TCP broadcasts are unbatched: all stats were reported per slot.
        DeliveryStats::default()
    }
}

impl Drop for TcpTransport {
    fn drop(&mut self) {
        self.finish();
    }
}

/// Client-side frame reader: connects and decodes the length-prefixed feed.
pub struct TcpFrameReader {
    stream: TcpStream,
}

impl TcpFrameReader {
    /// Connects to a broadcast server.
    pub fn connect(addr: SocketAddr) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Self { stream })
    }

    /// Reads the next frame; `Ok(None)` on a clean end of stream.
    pub fn recv(&mut self) -> io::Result<Option<Frame>> {
        let mut len_buf = [0u8; 4];
        if let Err(e) = self.stream.read_exact(&mut len_buf) {
            return match e.kind() {
                io::ErrorKind::UnexpectedEof | io::ErrorKind::ConnectionReset => Ok(None),
                _ => Err(e),
            };
        }
        let len = u32::from_le_bytes(len_buf) as usize;
        let mut body = vec![0u8; len];
        match self.stream.read_exact(&mut body) {
            Ok(()) => {}
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::UnexpectedEof | io::ErrorKind::ConnectionReset
                ) =>
            {
                // Truncated mid-frame (server shut down): treat as EOF.
                return Ok(None);
            }
            Err(e) => return Err(e),
        }
        Frame::decode(&body)
            .map(Some)
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "malformed frame"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::PagePayloads;
    use bdisk_sched::{PageId, Slot};

    #[test]
    fn loopback_round_trip_carries_payloads() {
        let mut transport = TcpTransport::bind(TcpTransportConfig::default()).unwrap();
        let addr = transport.local_addr();
        let reader = std::thread::spawn(move || {
            let mut reader = TcpFrameReader::connect(addr).unwrap();
            let mut frames = Vec::new();
            while let Some(frame) = reader.recv().unwrap() {
                frames.push(frame);
            }
            frames
        });
        assert!(transport.wait_for_clients(1, Duration::from_secs(5)));
        let payloads = PagePayloads::generate(10, 16);
        for seq in 0..10u64 {
            let stats = transport.broadcast(payloads.frame(seq, Slot::Page(PageId(seq as u32))));
            assert_eq!(stats.delivered, 1);
            assert_eq!(stats.dropped, 0);
            assert!(stats.bytes > 0);
        }
        transport.finish();
        let frames = reader.join().unwrap();
        assert_eq!(frames.len(), 10);
        for (i, f) in frames.iter().enumerate() {
            assert_eq!(f.seq, i as u64);
            assert_eq!(f.slot, Slot::Page(PageId(i as u32)));
            let expect = payloads.frame(i as u64, Slot::Page(PageId(i as u32)));
            assert_eq!(f.payload, expect.payload, "payload survived the wire");
        }
    }

    #[test]
    fn closed_peer_detected() {
        let mut transport = TcpTransport::bind(TcpTransportConfig {
            queue_capacity: 1,
            ..TcpTransportConfig::default()
        })
        .unwrap();
        let addr = transport.local_addr();
        let reader = TcpFrameReader::connect(addr).unwrap();
        assert!(transport.wait_for_clients(1, Duration::from_secs(5)));
        drop(reader);
        // Keep broadcasting until the write error propagates back.
        let deadline = Instant::now() + Duration::from_secs(5);
        let mut disconnected = 0;
        while disconnected == 0 && Instant::now() < deadline {
            disconnected = transport
                .broadcast(Frame::bare(0, Slot::Empty))
                .disconnected;
        }
        assert_eq!(disconnected, 1);
        assert_eq!(transport.active_clients(), 0);
    }

    /// A writer that accepts at most 3 bytes per call, to exercise the
    /// partial-write resume path of the coalescer.
    struct Trickle(Vec<u8>);

    impl Write for Trickle {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            let n = buf.len().min(3);
            self.0.extend_from_slice(&buf[..n]);
            Ok(n)
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn coalesced_write_survives_partial_writes() {
        let bufs: Vec<Arc<[u8]>> = vec![
            Arc::from(&b"hello "[..]),
            Arc::from(&b""[..]),
            Arc::from(&b"broadcast "[..]),
            Arc::from(&b"world"[..]),
        ];
        let mut sink = Trickle(Vec::new());
        write_coalesced(&mut sink, &bufs).unwrap();
        assert_eq!(sink.0, b"hello broadcast world");
    }
}
