//! Cache telemetry: a transparent [`CachePolicy`] wrapper that counts
//! hits, misses, evictions, and invalidations, and journals cache
//! admissions/evictions.
//!
//! [`ObservedPolicy`] is pure observation — every call delegates to the
//! wrapped policy unchanged, so the simulator/live parity contract (and
//! every policy property test) holds with instrumentation on. Recording
//! is lock- and allocation-free (sharded atomic counters from
//! [`bdisk_obs`]); each wrapper gets a process-unique id so journal
//! events can be attributed to one client's cache.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

use bdisk_obs::journal::{event, EventKind};
use bdisk_obs::registry::{self, Counter};
use bdisk_sched::PageId;

use crate::CachePolicy;

/// Cache-layer metric handles.
pub(crate) struct CacheMetrics {
    /// `bd_cache_hits_total`
    pub hits: &'static Counter,
    /// `bd_cache_misses_total`
    pub misses: &'static Counter,
    /// `bd_cache_evictions_total`
    pub evictions: &'static Counter,
    /// `bd_cache_invalidations_total`
    pub invalidations: &'static Counter,
}

pub(crate) fn metrics() -> &'static CacheMetrics {
    static M: OnceLock<CacheMetrics> = OnceLock::new();
    M.get_or_init(|| CacheMetrics {
        hits: registry::counter("bd_cache_hits_total", "Client cache hits"),
        misses: registry::counter(
            "bd_cache_misses_total",
            "Client cache misses (every miss inserts the fetched page)",
        ),
        evictions: registry::counter(
            "bd_cache_evictions_total",
            "Pages evicted from full client caches",
        ),
        invalidations: registry::counter(
            "bd_cache_invalidations_total",
            "Resident pages dropped by server-sent invalidations",
        ),
    })
}

/// `bd_cache_miss_loss_delayed_total`: misses whose fetch was delayed past
/// the page's scheduled broadcast because that broadcast was lost on the
/// channel. A subset of `bd_cache_misses_total` — subtracting it recovers
/// the miss cost a lossless channel would have charged.
fn loss_delayed_misses() -> &'static Counter {
    static M: OnceLock<&'static Counter> = OnceLock::new();
    M.get_or_init(|| {
        registry::counter(
            "bd_cache_miss_loss_delayed_total",
            "Cache misses delayed past the page's scheduled broadcast by channel loss",
        )
    })
}

/// Records one miss whose fetch waited through a lost broadcast (the live
/// client calls this when a gap swallowed its pending page and a later
/// periodic broadcast recovered it).
pub fn record_loss_delayed_miss() {
    loss_delayed_misses().inc();
}

/// Eagerly registers the cache metrics (idempotent); call when starting a
/// metrics server so `/metrics` shows the cache family before traffic.
pub fn register_metrics() {
    let _ = metrics();
    let _ = loss_delayed_misses();
    let _ = crate::lix::chain_len_histogram();
}

static NEXT_CACHE_ID: AtomicU64 = AtomicU64::new(0);

/// A [`CachePolicy`] that counts what the wrapped policy does and journals
/// admissions/evictions, without changing any decision.
pub struct ObservedPolicy {
    inner: Box<dyn CachePolicy>,
    /// Process-unique id tagging this cache's journal events (one wrapper
    /// per client, so this stands in for a client id).
    id: u64,
}

impl ObservedPolicy {
    /// Wraps `inner`, assigning the next process-unique cache id.
    pub fn new(inner: Box<dyn CachePolicy>) -> Self {
        Self {
            inner,
            id: NEXT_CACHE_ID.fetch_add(1, Ordering::Relaxed),
        }
    }
}

impl CachePolicy for ObservedPolicy {
    fn contains(&self, page: PageId) -> bool {
        self.inner.contains(page)
    }

    fn on_hit(&mut self, page: PageId, now: f64) {
        metrics().hits.inc();
        self.inner.on_hit(page, now)
    }

    fn insert(&mut self, page: PageId, now: f64) -> Option<PageId> {
        let m = metrics();
        m.misses.inc();
        event(EventKind::CacheAdmit, self.id, page.0 as u64);
        let victim = self.inner.insert(page, now);
        if let Some(victim) = victim {
            m.evictions.inc();
            event(EventKind::CacheEvict, self.id, victim.0 as u64);
        }
        victim
    }

    fn invalidate(&mut self, page: PageId) -> bool {
        let dropped = self.inner.invalidate(page);
        if dropped {
            metrics().invalidations.inc();
            event(EventKind::CacheEvict, self.id, page.0 as u64);
        }
        dropped
    }

    fn len(&self) -> usize {
        self.inner.len()
    }

    fn capacity(&self) -> usize {
        self.inner.capacity()
    }

    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn rescore(&mut self, ctx: &crate::PolicyContext) {
        self.inner.rescore(ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lru::LruPolicy;

    #[test]
    fn wrapper_is_transparent_and_counts() {
        let m = metrics();
        let hits0 = m.hits.value();
        let miss0 = m.misses.value();
        let evic0 = m.evictions.value();
        let inval0 = m.invalidations.value();

        let mut p = ObservedPolicy::new(Box::new(LruPolicy::new(2)));
        assert_eq!(p.capacity(), 2);
        assert_eq!(p.name(), "LRU");
        assert_eq!(p.insert(PageId(0), 1.0), None);
        assert_eq!(p.insert(PageId(1), 2.0), None);
        p.on_hit(PageId(0), 3.0);
        // LRU evicts page 1 (page 0 was just touched).
        assert_eq!(p.insert(PageId(2), 4.0), Some(PageId(1)));
        assert!(p.invalidate(PageId(2)));
        assert!(!p.invalidate(PageId(1)));
        assert_eq!(p.len(), 1);

        // Counters are process-global and sibling tests may be recording
        // concurrently, so assert the floor this test itself contributed.
        assert!(m.hits.value() - hits0 >= 1);
        assert!(m.misses.value() - miss0 >= 3);
        assert!(m.evictions.value() - evic0 >= 1);
        assert!(m.invalidations.value() - inval0 >= 1);
    }
}
