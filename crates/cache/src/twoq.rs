//! 2Q replacement [Johnson & Shasha, VLDB 1994] — the other "improvement
//! to LRU" the paper names as a candidate base for approximating PIX
//! (Section 5.5).
//!
//! Simplified 2Q (the paper's "2Q full" with an in-memory A1out ghost
//! list):
//!
//! * `A1in`  — a FIFO of pages seen once, holding `Kin` slots;
//! * `Am`    — an LRU of proven re-referenced pages;
//! * `A1out` — a ghost list of recently evicted-from-A1in page *ids*
//!   (no data): a miss that hits `A1out` is promoted straight into `Am`.
//!
//! One-touch scans wash through `A1in` without disturbing `Am`, giving
//! LRU-K-like scan resistance at LRU-like constant cost.

use std::collections::{HashSet, VecDeque};

use bdisk_sched::PageId;

use crate::chain::LruChain;
use crate::CachePolicy;

/// Simplified 2Q replacement.
#[derive(Debug, Clone)]
pub struct TwoQPolicy {
    capacity: usize,
    /// Target size of the A1in FIFO (Kin; the classic tuning is ~25% of
    /// the cache).
    kin: usize,
    /// Ghost-list capacity (Kout; classic tuning ~50% of the cache).
    kout: usize,
    a1in: VecDeque<PageId>,
    a1in_set: HashSet<PageId>,
    am: LruChain,
    a1out: VecDeque<PageId>,
    a1out_set: HashSet<PageId>,
}

impl TwoQPolicy {
    /// Creates a 2Q cache with the classic 25% / 50% tuning for the
    /// A1in and A1out queues.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be positive");
        Self::with_tuning(capacity, (capacity / 4).max(1), (capacity / 2).max(1))
    }

    /// Creates a 2Q cache with explicit queue targets.
    pub fn with_tuning(capacity: usize, kin: usize, kout: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be positive");
        assert!(kin >= 1 && kin <= capacity, "Kin must be in 1..=capacity");
        assert!(kout >= 1, "Kout must be at least 1");
        Self {
            capacity,
            kin,
            kout,
            a1in: VecDeque::new(),
            a1in_set: HashSet::new(),
            am: LruChain::new(),
            a1out: VecDeque::new(),
            a1out_set: HashSet::new(),
        }
    }

    /// Number of pages currently in the A1in (seen-once) queue.
    pub fn a1in_len(&self) -> usize {
        self.a1in.len()
    }

    /// Number of pages currently in the Am (proven-hot) queue.
    pub fn am_len(&self) -> usize {
        self.am.len()
    }

    /// Records `page` in the ghost list, trimming to Kout.
    fn remember_ghost(&mut self, page: PageId) {
        if self.a1out_set.insert(page) {
            self.a1out.push_back(page);
            if self.a1out.len() > self.kout {
                let old = self.a1out.pop_front().expect("non-empty");
                self.a1out_set.remove(&old);
            }
        }
    }

    /// Frees one slot, returning the evicted page.
    fn reclaim(&mut self) -> PageId {
        // Prefer shrinking an over-target A1in; its evictions become
        // ghosts so a quick return gets promoted to Am.
        if self.a1in.len() > self.kin || self.am.is_empty() {
            let v = self
                .a1in
                .pop_front()
                .expect("cache full but both queues empty");
            self.a1in_set.remove(&v);
            self.remember_ghost(v);
            v
        } else {
            self.am
                .pop_back()
                .expect("Am non-empty by branch condition")
        }
    }
}

impl CachePolicy for TwoQPolicy {
    fn contains(&self, page: PageId) -> bool {
        self.a1in_set.contains(&page) || self.am.contains(page)
    }

    fn on_hit(&mut self, page: PageId, _now: f64) {
        if self.am.contains(page) {
            self.am.move_to_front(page);
        } else {
            debug_assert!(
                self.a1in_set.contains(&page),
                "hit on non-resident page {page}"
            );
            // Classic simplified 2Q leaves A1in hits in place (FIFO);
            // a second touch proves nothing while still in the window.
        }
    }

    fn insert(&mut self, page: PageId, _now: f64) -> Option<PageId> {
        assert!(!self.contains(page), "page {page} already resident");
        let victim = if self.a1in.len() + self.am.len() == self.capacity {
            Some(self.reclaim())
        } else {
            None
        };
        if self.a1out_set.contains(&page) {
            // Seen before and recently evicted: proven re-reference.
            self.am.push_front(page);
        } else {
            self.a1in.push_back(page);
            self.a1in_set.insert(page);
        }
        victim
    }

    fn invalidate(&mut self, page: PageId) -> bool {
        if self.a1in_set.remove(&page) {
            self.a1in.retain(|&p| p != page);
            true
        } else {
            self.am.remove(page)
        }
    }

    fn len(&self) -> usize {
        self.a1in.len() + self.am.len()
    }

    fn capacity(&self) -> usize {
        self.capacity
    }

    fn name(&self) -> &'static str {
        "2Q"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_touch_goes_to_a1in() {
        let mut q = TwoQPolicy::new(8);
        q.insert(PageId(1), 0.0);
        q.insert(PageId(2), 1.0);
        assert_eq!(q.a1in_len(), 2);
        assert_eq!(q.am_len(), 0);
        assert!(q.contains(PageId(1)));
    }

    /// Touch helper: hit when resident, insert otherwise.
    fn touch(q: &mut TwoQPolicy, page: u32, t: f64) -> Option<PageId> {
        let page = PageId(page);
        if q.contains(page) {
            q.on_hit(page, t);
            None
        } else {
            q.insert(page, t)
        }
    }

    #[test]
    fn ghost_hit_promotes_to_am() {
        let mut q = TwoQPolicy::with_tuning(2, 1, 4);
        q.insert(PageId(1), 0.0);
        q.insert(PageId(2), 1.0);
        // Cache full; A1in=[1,2] over its target of 1 → FIFO evicts 1.
        assert_eq!(q.insert(PageId(3), 2.0), Some(PageId(1)));
        // Page 1 is now a ghost; re-inserting it goes straight to Am.
        let am_before = q.am_len();
        q.insert(PageId(1), 3.0);
        assert_eq!(q.am_len(), am_before + 1);
        assert!(q.contains(PageId(1)));
    }

    #[test]
    fn scan_does_not_disturb_am() {
        let mut q = TwoQPolicy::with_tuning(8, 2, 16);
        let mut filler = 1000u32;
        // Establish 4 hot pages in Am: insert, push through A1in with
        // unique filler pages until ghosted, then re-insert (promotes).
        for page in 0..4u32 {
            touch(&mut q, page, 0.0);
            while q.contains(PageId(page)) {
                touch(&mut q, filler, 1.0);
                filler += 1;
            }
            touch(&mut q, page, 2.0);
        }
        assert_eq!(q.am_len(), 4, "hot set should live in Am");
        // A long one-touch scan must leave the hot set resident.
        for page in 5000..5100u32 {
            touch(&mut q, page, 3.0);
        }
        for page in 0..4u32 {
            assert!(q.contains(PageId(page)), "scan evicted hot page {page}");
        }
    }

    #[test]
    fn capacity_respected() {
        let mut q = TwoQPolicy::new(4);
        for page in 0..50u32 {
            if !q.contains(PageId(page % 9)) {
                q.insert(PageId(page % 9), page as f64);
            } else {
                q.on_hit(PageId(page % 9), page as f64);
            }
            assert!(q.len() <= 4, "len {} at page {page}", q.len());
        }
        assert_eq!(q.len(), 4);
    }

    #[test]
    fn ghost_list_bounded() {
        let mut q = TwoQPolicy::with_tuning(2, 1, 3);
        for page in 0..100u32 {
            if !q.contains(PageId(page)) {
                q.insert(PageId(page), page as f64);
            }
        }
        assert!(q.a1out.len() <= 3);
        assert_eq!(q.a1out.len(), q.a1out_set.len());
    }

    #[test]
    fn am_hits_reorder() {
        let mut q = TwoQPolicy::with_tuning(3, 1, 16);
        let mut filler = 1000u32;
        // Promote pages 1 and 2 into Am.
        for page in [1u32, 2] {
            touch(&mut q, page, 0.0);
            while q.contains(PageId(page)) {
                touch(&mut q, filler, 1.0);
                filler += 1;
            }
            touch(&mut q, page, 2.0);
        }
        assert_eq!(q.am_len(), 2);
        q.on_hit(PageId(1), 3.0); // 1 becomes MRU of Am

        // Drain A1in to its target, then force reclaims that dip into Am:
        // the LRU of Am (page 2) must leave before page 1.
        let mut evicted = Vec::new();
        for page in 200..208u32 {
            if let Some(v) = touch(&mut q, page, 4.0) {
                evicted.push(v.0);
            }
        }
        let pos = |p: u32| evicted.iter().position(|&v| v == p);
        match (pos(2), pos(1)) {
            (Some(a), Some(b)) => assert!(a < b, "Am must evict its LRU first: {evicted:?}"),
            (None, Some(_)) => panic!("page 1 left before page 2: {evicted:?}"),
            _ => {} // neither evicted yet, or only page 2 — both fine
        }
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = TwoQPolicy::new(0);
    }
}
