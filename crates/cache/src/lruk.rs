//! LRU-K replacement [O'Neil, O'Neil, Weikum, SIGMOD 1993].
//!
//! The paper suggests that "better approximations of PIX might be developed
//! using some of the recently proposed improvements to LRU like 2Q \[John94\]
//! or LRU-k \[ONei93\]" (Section 5.5). This module provides LRU-K itself and
//! a frequency-aware variant in the spirit of LIX:
//!
//! * [`LruKPolicy`] — classic LRU-K: evict the page whose K-th most recent
//!   reference is oldest (pages with fewer than K references are treated as
//!   infinitely old and evicted first, oldest last-reference first).
//! * [`LruKPolicy::with_frequencies`] — the broadcast-aware variant: the
//!   backward K-distance is scaled by the page's broadcast frequency, so
//!   a page that is cheap to re-acquire (fast disk) must show a much
//!   hotter history to stay cached. This is the LRU-K analogue of the
//!   P/X → LIX step.

use std::collections::{HashMap, VecDeque};

use bdisk_sched::PageId;

use crate::CachePolicy;

/// Reference history of one cached page.
#[derive(Debug, Clone)]
struct History {
    /// Up to K most recent reference times, newest at the back.
    times: VecDeque<f64>,
}

impl History {
    fn new(now: f64, k: usize) -> Self {
        let mut times = VecDeque::with_capacity(k);
        times.push_back(now);
        Self { times }
    }

    fn touch(&mut self, now: f64, k: usize) {
        if self.times.len() == k {
            self.times.pop_front();
        }
        self.times.push_back(now);
    }

    /// Time of the K-th most recent reference, or `None` when the page has
    /// fewer than K references.
    fn kth(&self, k: usize) -> Option<f64> {
        (self.times.len() == k).then(|| self.times[0])
    }

    fn last(&self) -> f64 {
        *self.times.back().expect("history is never empty")
    }
}

/// LRU-K replacement, optionally frequency-scaled for broadcast disks.
#[derive(Debug, Clone)]
pub struct LruKPolicy {
    capacity: usize,
    k: usize,
    histories: HashMap<PageId, History>,
    /// Per-page broadcast frequency; empty = classic LRU-K (all equal).
    page_freq: Vec<f64>,
    name: &'static str,
}

impl LruKPolicy {
    /// Classic LRU-K with the given history depth (K ≥ 1; K = 1 is LRU
    /// up to tie-breaking).
    pub fn new(capacity: usize, k: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be positive");
        assert!(k >= 1, "history depth K must be at least 1");
        Self {
            capacity,
            k,
            histories: HashMap::new(),
            page_freq: Vec::new(),
            name: "LRU-K",
        }
    }

    /// Broadcast-aware LRU-K: eviction cost is scaled by each page's
    /// broadcast frequency (frequent pages are cheap to lose).
    pub fn with_frequencies(capacity: usize, k: usize, page_freq: Vec<f64>) -> Self {
        assert!(
            page_freq.iter().all(|&f| f > 0.0),
            "frequencies must be positive"
        );
        let mut p = Self::new(capacity, k);
        p.page_freq = page_freq;
        p.name = "LRU-K/X";
        p
    }

    fn freq(&self, page: PageId) -> f64 {
        if self.page_freq.is_empty() {
            1.0
        } else {
            self.page_freq[page.index()]
        }
    }

    /// Eviction priority: smaller = evicted sooner.
    ///
    /// Pages lacking a full K-history rank below all full-history pages
    /// (classic LRU-K "infinite backward distance"). Within each class,
    /// the score is the negated *staleness* (`now − reference time`),
    /// scaled by the page's broadcast frequency in the `/X` variant: a
    /// page on a 7× disk ages 7× faster because it is cheap to
    /// re-acquire. With all frequencies 1 this reduces exactly to classic
    /// LRU-K ordering.
    fn priority(&self, page: PageId, h: &History, now: f64) -> (u8, f64) {
        let x = self.freq(page);
        match h.kth(self.k) {
            // (class 0) incomplete history: evict before any full-history
            // page, stalest (frequency-scaled) last-touch first.
            None => (0, -(now - h.last()) * x),
            // (class 1) full history: stalest kth reference first.
            Some(t) => (1, -(now - t) * x),
        }
    }

    fn pick_victim(&self, now: f64) -> PageId {
        self.histories
            .iter()
            .min_by(|(pa, ha), (pb, hb)| {
                let ka = self.priority(**pa, ha, now);
                let kb = self.priority(**pb, hb, now);
                ka.0.cmp(&kb.0)
                    .then(ka.1.partial_cmp(&kb.1).expect("finite priorities"))
                    .then(pa.cmp(pb))
            })
            .map(|(p, _)| *p)
            .expect("cache is full")
    }
}

impl CachePolicy for LruKPolicy {
    fn contains(&self, page: PageId) -> bool {
        self.histories.contains_key(&page)
    }

    fn on_hit(&mut self, page: PageId, now: f64) {
        let k = self.k;
        self.histories
            .get_mut(&page)
            .expect("hit on non-resident page")
            .touch(now, k);
    }

    fn insert(&mut self, page: PageId, now: f64) -> Option<PageId> {
        assert!(!self.contains(page), "page {page} already resident");
        let victim = if self.histories.len() == self.capacity {
            let v = self.pick_victim(now);
            self.histories.remove(&v);
            Some(v)
        } else {
            None
        };
        self.histories.insert(page, History::new(now, self.k));
        victim
    }

    fn invalidate(&mut self, page: PageId) -> bool {
        self.histories.remove(&page).is_some()
    }

    fn len(&self) -> usize {
        self.histories.len()
    }

    fn capacity(&self) -> usize {
        self.capacity
    }

    fn name(&self) -> &'static str {
        self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn incomplete_history_evicted_first() {
        let mut p = LruKPolicy::new(2, 2);
        p.insert(PageId(1), 0.0);
        p.on_hit(PageId(1), 1.0); // page 1 now has a full 2-history
        p.insert(PageId(2), 2.0); // page 2 has 1 reference
                                  // Page 2's history is incomplete → it is the victim despite being
                                  // more recent.
        assert_eq!(p.insert(PageId(3), 3.0), Some(PageId(2)));
        assert!(p.contains(PageId(1)));
    }

    #[test]
    fn full_histories_rank_by_kth_reference() {
        let mut p = LruKPolicy::new(2, 2);
        p.insert(PageId(1), 0.0);
        p.on_hit(PageId(1), 10.0); // kth (2nd-last) ref = 0.0
        p.insert(PageId(2), 1.0);
        p.on_hit(PageId(2), 2.0); // kth ref = 1.0
                                  // Page 1's 2nd-most-recent reference (0.0) is older than page 2's
                                  // (1.0) → page 1 is the victim, even though its last touch (10.0)
                                  // is the most recent of all.
        assert_eq!(p.insert(PageId(3), 11.0), Some(PageId(1)));
    }

    #[test]
    fn k1_behaves_like_lru_on_distinct_times() {
        use crate::lru::LruPolicy;
        let mut lruk = LruKPolicy::new(4, 1);
        let mut lru = LruPolicy::new(4);
        let mut t = 0.0;
        let mut x = 5u64;
        for _ in 0..2000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let page = PageId((x >> 33) as u32 % 12);
            t += 1.0;
            let a = if lruk.contains(page) {
                lruk.on_hit(page, t);
                None
            } else {
                lruk.insert(page, t)
            };
            let b = if lru.contains(page) {
                lru.on_hit(page, t);
                None
            } else {
                lru.insert(page, t)
            };
            assert_eq!(a, b, "diverged at t={t}");
        }
    }

    #[test]
    fn scanning_does_not_flush_lru2() {
        // The LRU-K headline: a one-touch scan cannot displace pages with
        // genuine re-reference history.
        let mut p = LruKPolicy::new(3, 2);
        for page in 0..3u32 {
            p.insert(PageId(page), page as f64);
        }
        for t in 10..20 {
            for page in 0..3u32 {
                p.on_hit(PageId(page), (t * 3 + page as usize as u32) as f64);
            }
        }
        // Scan pages 100..110: each insert evicts the *scan's* previous
        // page (incomplete history), never the hot trio… except the very
        // first scan insert, which must evict one hot page to make room.
        let first_victim = p.insert(PageId(100), 100.0).unwrap();
        assert!(first_victim.0 < 3);
        for (i, page) in (101..110u32).enumerate() {
            let v = p.insert(PageId(page), 101.0 + i as f64).unwrap();
            assert_eq!(v, PageId(page - 1), "scan should displace itself");
        }
        // Two of the three hot pages survived the entire scan.
        let survivors = (0..3u32).filter(|&q| p.contains(PageId(q))).count();
        assert_eq!(survivors, 2);
    }

    #[test]
    fn frequency_scaled_variant_prefers_evicting_fast_disk_pages() {
        // Pages 0 (freq 7) and 1 (freq 1) with identical histories: the
        // fast-disk page is cheaper to lose.
        let mut p = LruKPolicy::with_frequencies(2, 2, vec![7.0, 1.0, 1.0]);
        p.insert(PageId(0), 0.0);
        p.insert(PageId(1), 0.0);
        p.on_hit(PageId(0), 5.0);
        p.on_hit(PageId(1), 5.0);
        assert_eq!(p.insert(PageId(2), 6.0), Some(PageId(0)));
        assert_eq!(p.name(), "LRU-K/X");
    }

    #[test]
    fn capacity_and_len_maintained() {
        let mut p = LruKPolicy::new(3, 2);
        for page in 0..10u32 {
            if p.contains(PageId(page)) {
                p.on_hit(PageId(page), page as f64);
            } else {
                p.insert(PageId(page), page as f64);
            }
            assert!(p.len() <= 3);
        }
        assert_eq!(p.len(), 3);
        assert_eq!(p.capacity(), 3);
    }

    #[test]
    #[should_panic(expected = "history depth K")]
    fn zero_k_rejected() {
        let _ = LruKPolicy::new(2, 0);
    }
}
