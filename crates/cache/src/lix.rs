//! `LIX` — the implementable approximation of `PIX` (Section 5.5) — and its
//! frequency-blind variant `L`.
//!
//! LIX "maintains a number of smaller chains: one corresponding to each
//! disk of the broadcast (LIX reduces to LRU if the broadcast uses a single
//! flat disk). A page always enters the chain corresponding to the disk in
//! which it is broadcast. Like LRU, when a page is hit, it is moved to the
//! top of its own chain. When a new page enters the cache, LIX evaluates a
//! lix value only for the page at the bottom of each chain. The page with
//! the smallest lix value is ejected."
//!
//! Per cached page the policy tracks a running probability estimate `p` and
//! the last access time `t`. On each new access:
//!
//! ```text
//! p ← α / (CurrentTime − t)  +  (1 − α) · p        (α = 0.25 in the paper)
//! t ← CurrentTime
//! ```
//!
//! and `lix = p_evaluated / frequency` where the frequency of the page's
//! disk "is known exactly". The `L` variant "behaves exactly like LIX
//! except that it assumes the same value of frequency for all pages" —
//! comparing `L` against LRU isolates the value of the probability
//! estimator, and `LIX` against `L` isolates the value of frequency
//! knowledge (Experiment 5).
//!
//! Both policies do a constant amount of work per replacement (proportional
//! to the number of disks), the same order as LRU.

use std::collections::HashMap;
use std::sync::OnceLock;

use bdisk_obs::registry::{self, Histogram, POW2_BOUNDS};
use bdisk_sched::PageId;

use crate::chain::LruChain;
use crate::{CachePolicy, PolicyContext};

/// `bd_lix_chain_len` — the length of the chain a LIX/L victim search
/// walked past, recorded once per chain per replacement. The distribution
/// shows how the paper's "chains do not have fixed sizes" behave live.
pub(crate) fn chain_len_histogram() -> &'static Histogram {
    static H: OnceLock<&'static Histogram> = OnceLock::new();
    H.get_or_init(|| {
        registry::histogram(
            "bd_lix_chain_len",
            "Per-disk LIX/L chain lengths sampled at each replacement",
            POW2_BOUNDS,
        )
    })
}

/// Minimum elapsed time used in the estimator to avoid division by zero
/// when a page is re-accessed at the instant it entered the cache.
const MIN_ELAPSED: f64 = 1e-9;

#[derive(Debug, Clone, Copy)]
struct Meta {
    /// Running probability estimate.
    p: f64,
    /// Time of the most recent access.
    t: f64,
}

/// The LIX replacement policy (and, via [`LixPolicy::l_variant`], `L`).
#[derive(Debug, Clone)]
pub struct LixPolicy {
    capacity: usize,
    /// One LRU chain per disk.
    chains: Vec<LruChain>,
    /// Disk of each physical page.
    page_disk: Vec<u16>,
    /// Per-disk broadcast frequency (all 1.0 for the `L` variant).
    disk_freqs: Vec<f64>,
    alpha: f64,
    meta: HashMap<PageId, Meta>,
    name: &'static str,
}

impl LixPolicy {
    /// Creates a LIX cache.
    ///
    /// `page_disk[p]` is the disk (0-based) broadcasting physical page `p`;
    /// `disk_freqs` the relative frequency of each disk; `alpha` the EWMA
    /// constant (paper: 0.25).
    pub fn new(capacity: usize, page_disk: Vec<u16>, disk_freqs: Vec<f64>, alpha: f64) -> Self {
        Self::build(capacity, page_disk, disk_freqs, alpha, "LIX")
    }

    /// Creates the `L` variant: identical chains and estimator, but all
    /// frequencies treated as equal.
    pub fn l_variant(capacity: usize, page_disk: Vec<u16>, num_disks: usize, alpha: f64) -> Self {
        Self::build(capacity, page_disk, vec![1.0; num_disks], alpha, "L")
    }

    fn build(
        capacity: usize,
        page_disk: Vec<u16>,
        disk_freqs: Vec<f64>,
        alpha: f64,
        name: &'static str,
    ) -> Self {
        assert!(capacity > 0, "cache capacity must be positive");
        assert!(!disk_freqs.is_empty(), "need at least one disk");
        assert!(
            disk_freqs.iter().all(|&f| f > 0.0),
            "disk frequencies must be positive"
        );
        assert!((0.0..=1.0).contains(&alpha), "alpha must be in [0,1]");
        if let Some(&bad) = page_disk.iter().find(|&&d| d as usize >= disk_freqs.len()) {
            panic!("page assigned to nonexistent disk {bad}");
        }
        Self {
            capacity,
            chains: (0..disk_freqs.len()).map(|_| LruChain::new()).collect(),
            page_disk,
            disk_freqs,
            alpha,
            meta: HashMap::new(),
            name,
        }
    }

    fn disk_of(&self, page: PageId) -> usize {
        self.page_disk[page.index()] as usize
    }

    /// The estimator evaluated at `now` for a page's stored state.
    fn estimate(&self, m: &Meta, now: f64) -> f64 {
        let elapsed = (now - m.t).max(MIN_ELAPSED);
        self.alpha / elapsed + (1.0 - self.alpha) * m.p
    }

    /// The lix value of `page` evaluated at `now` (estimate ÷ frequency).
    pub fn lix_value(&self, page: PageId, now: f64) -> Option<f64> {
        let m = self.meta.get(&page)?;
        Some(self.estimate(m, now) / self.disk_freqs[self.disk_of(page)])
    }

    /// Number of chains (= number of disks).
    pub fn num_chains(&self) -> usize {
        self.chains.len()
    }

    /// Current length of the chain for `disk`.
    pub fn chain_len(&self, disk: usize) -> usize {
        self.chains[disk].len()
    }

    /// The pages currently on `disk`'s chain, most- to least-recently used.
    /// Exposed so tests can check the chain-partition invariant.
    pub fn chain_pages(&self, disk: usize) -> Vec<PageId> {
        self.chains[disk].iter().collect()
    }

    /// The raw `(p, t)` estimator state of a resident page: the running
    /// probability estimate and the last access time. `None` when the page
    /// is not resident. Exposed for tests and instrumentation.
    pub fn estimator_state(&self, page: PageId) -> Option<(f64, f64)> {
        self.meta.get(&page).map(|m| (m.p, m.t))
    }

    /// Chooses the victim: the bottom page of each chain with the smallest
    /// lix value. Ties break toward the faster disk for determinism.
    fn pick_victim(&self, now: f64) -> PageId {
        let chain_lens = chain_len_histogram();
        let mut best: Option<(f64, PageId)> = None;
        for chain in &self.chains {
            chain_lens.record(chain.len() as u64);
            let Some(page) = chain.back() else { continue };
            let lix = self
                .lix_value(page, now)
                .expect("resident pages always have metadata");
            match best {
                Some((b, _)) if lix >= b => {}
                _ => best = Some((lix, page)),
            }
        }
        best.expect("cache is full, some chain is non-empty").1
    }
}

impl CachePolicy for LixPolicy {
    fn contains(&self, page: PageId) -> bool {
        self.meta.contains_key(&page)
    }

    fn on_hit(&mut self, page: PageId, now: f64) {
        let alpha = self.alpha;
        let est = {
            let m = self.meta.get(&page).expect("hit on non-resident page");
            let elapsed = (now - m.t).max(MIN_ELAPSED);
            alpha / elapsed + (1.0 - alpha) * m.p
        };
        let m = self.meta.get_mut(&page).expect("checked above");
        m.p = est;
        m.t = now;
        let disk = self.page_disk[page.index()] as usize;
        self.chains[disk].move_to_front(page);
    }

    fn insert(&mut self, page: PageId, now: f64) -> Option<PageId> {
        assert!(!self.contains(page), "page {page} already resident");
        let victim = if self.meta.len() == self.capacity {
            let v = self.pick_victim(now);
            let victim_disk = self.disk_of(v);
            self.chains[victim_disk].remove(v);
            self.meta.remove(&v);
            Some(v)
        } else {
            None
        };
        // "When the page enters a chain, p is initially set to zero and t
        //  is set to the current time."
        self.meta.insert(page, Meta { p: 0.0, t: now });
        let disk = self.disk_of(page);
        self.chains[disk].push_front(page);
        victim
    }

    fn invalidate(&mut self, page: PageId) -> bool {
        if self.meta.remove(&page).is_none() {
            return false;
        }
        let disk = self.disk_of(page);
        self.chains[disk].remove(page)
    }

    fn len(&self) -> usize {
        self.meta.len()
    }

    fn capacity(&self) -> usize {
        self.capacity
    }

    fn name(&self) -> &'static str {
        self.name
    }

    fn rescore(&mut self, ctx: &PolicyContext) {
        // A hot-swapped plan moves pages between disks and changes disk
        // frequencies. Estimator state (p, t) is the client's *observed*
        // access history — it survives the swap untouched; only the
        // disk partition and the frequency denominators are replaced.
        if let Some(&bad) = ctx
            .page_disk
            .iter()
            .find(|&&d| d as usize >= ctx.disk_freqs.len())
        {
            panic!("page assigned to nonexistent disk {bad}");
        }
        self.page_disk = ctx.page_disk.clone();
        self.disk_freqs = if self.name == "L" {
            vec![1.0; ctx.disk_freqs.len()]
        } else {
            ctx.disk_freqs.iter().map(|&f| f as f64).collect()
        };
        // Re-bucket residents into their (possibly new) disk chains,
        // restoring recency order: most recently accessed at the front,
        // ties broken by page id for determinism.
        let mut residents: Vec<(f64, PageId)> = self.meta.iter().map(|(&p, m)| (m.t, p)).collect();
        residents.sort_by(|a, b| {
            a.0.partial_cmp(&b.0)
                .expect("access times are never NaN")
                .then(b.1.cmp(&a.1))
        });
        self.chains = (0..self.disk_freqs.len())
            .map(|_| LruChain::new())
            .collect();
        for (_, page) in residents {
            let disk = self.page_disk[page.index()] as usize;
            self.chains[disk].push_front(page);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lru::LruPolicy;

    /// Two disks: pages 0..5 on the fast disk (freq 4), 5..10 slow (freq 1).
    fn two_disk_lix(capacity: usize) -> LixPolicy {
        let page_disk = (0..10u16).map(|p| if p < 5 { 0 } else { 1 }).collect();
        LixPolicy::new(capacity, page_disk, vec![4.0, 1.0], 0.25)
    }

    #[test]
    fn pages_enter_their_disk_chain() {
        let mut lix = two_disk_lix(4);
        lix.insert(PageId(0), 0.0);
        lix.insert(PageId(7), 1.0);
        lix.insert(PageId(1), 2.0);
        assert_eq!(lix.chain_len(0), 2);
        assert_eq!(lix.chain_len(1), 1);
        assert_eq!(lix.num_chains(), 2);
    }

    #[test]
    fn chains_grow_and_shrink_dynamically() {
        // Figure 12: "the chains do not have fixed sizes".
        let mut lix = two_disk_lix(2);
        lix.insert(PageId(0), 0.0);
        lix.insert(PageId(1), 1.0);
        assert_eq!(lix.chain_len(0), 2);
        // A slow-disk page evicts a fast-disk page: chain 0 shrinks,
        // chain 1 grows.
        let v = lix.insert(PageId(7), 10.0).unwrap();
        assert!(v.0 < 5, "victim {v} should be from the fast disk");
        assert_eq!(lix.chain_len(0), 1);
        assert_eq!(lix.chain_len(1), 1);
    }

    #[test]
    fn frequency_biases_eviction_toward_fast_disk() {
        // Same access recency, different disks: the fast-disk page has the
        // lower lix (same estimate ÷ larger frequency) and is evicted.
        let mut lix = two_disk_lix(2);
        lix.insert(PageId(0), 0.0); // fast disk
        lix.insert(PageId(7), 0.0); // slow disk
        lix.on_hit(PageId(0), 5.0);
        lix.on_hit(PageId(7), 5.0);
        let v = lix.insert(PageId(8), 10.0).unwrap();
        assert_eq!(v, PageId(0), "fast-disk page should be the victim");
    }

    #[test]
    fn l_variant_ignores_frequency() {
        // Identical scenario under L: equal frequencies, so the decision
        // falls to the estimates alone; with identical access patterns the
        // tie breaks to the first chain, but making the fast-disk page
        // *hotter* must save it under L.
        let page_disk: Vec<u16> = (0..10u16).map(|p| if p < 5 { 0 } else { 1 }).collect();
        let mut l = LixPolicy::l_variant(2, page_disk, 2, 0.25);
        l.insert(PageId(0), 0.0);
        l.insert(PageId(7), 0.0);
        for t in 1..8 {
            l.on_hit(PageId(0), t as f64);
        }
        l.on_hit(PageId(7), 8.0);
        let v = l.insert(PageId(8), 10.0).unwrap();
        assert_eq!(v, PageId(7), "L evicts the colder page regardless of disk");
        assert_eq!(l.name(), "L");
    }

    #[test]
    fn estimator_rises_with_hit_rate() {
        let mut lix = two_disk_lix(4);
        lix.insert(PageId(0), 0.0);
        lix.insert(PageId(1), 0.0);
        // Page 0 hit every unit, page 1 hit every 10 units.
        for i in 1..=20 {
            lix.on_hit(PageId(0), i as f64);
            if i % 10 == 0 {
                lix.on_hit(PageId(1), i as f64);
            }
        }
        let hot = lix.lix_value(PageId(0), 21.0).unwrap();
        let cold = lix.lix_value(PageId(1), 21.0).unwrap();
        // Same disk, so lix ratio = estimate ratio.
        assert!(hot > cold, "hot {hot} <= cold {cold}");
    }

    #[test]
    fn estimate_decays_with_idle_time() {
        let mut lix = two_disk_lix(4);
        lix.insert(PageId(0), 0.0);
        lix.on_hit(PageId(0), 1.0);
        let fresh = lix.lix_value(PageId(0), 2.0).unwrap();
        let stale = lix.lix_value(PageId(0), 100.0).unwrap();
        assert!(stale < fresh);
    }

    #[test]
    fn single_flat_disk_reduces_to_lru() {
        // "LIX reduces to LRU if the broadcast uses a single flat disk."
        let page_disk = vec![0u16; 50];
        let mut lix = LixPolicy::new(5, page_disk, vec![1.0], 0.25);
        let mut lru = LruPolicy::new(5);
        // Drive both with the same deterministic request stream.
        let mut x = 99u64;
        let mut t = 0.0;
        for _ in 0..5_000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let page = PageId((x >> 33) as u32 % 50);
            t += 1.0;
            let (a, b);
            if lix.contains(page) {
                lix.on_hit(page, t);
                a = None;
            } else {
                a = lix.insert(page, t);
            }
            if lru.contains(page) {
                lru.on_hit(page, t);
                b = None;
            } else {
                b = lru.insert(page, t);
            }
            assert_eq!(a, b, "diverged at t={t} on {page}");
        }
    }

    #[test]
    fn figure12_worked_example() {
        // Two chains; bottom pages g (disk 1, lix 0.37) and k (disk 2,
        // lix 0.85). g has the lower lix and is the victim; the new page z
        // from disk 2 joins Disk2Q.
        let page_disk: Vec<u16> = (0..12u16).map(|p| if p < 7 { 0 } else { 1 }).collect();
        let mut lix = LixPolicy::new(11, page_disk, vec![2.0, 1.0], 0.25);
        // Fill Disk1Q with a..g (pages 0..7) and Disk2Q with h..k (7..11).
        // Insert in reverse so page 'a'=0 ends at the top like the figure.
        for p in (0..7u32).rev() {
            lix.insert(PageId(p), f64::from(10 - p));
        }
        for p in (7..11u32).rev() {
            lix.insert(PageId(p), f64::from(20 - p));
        }
        // Make g's lix smaller than k's: hit k recently.
        lix.on_hit(PageId(10), 30.0);
        // …then re-order so k is at the bottom of its chain again.
        for p in 7..10u32 {
            lix.on_hit(PageId(p), 31.0);
        }
        let g = PageId(6);
        let k = PageId(10);
        let now = 40.0;
        let lix_g = lix.lix_value(g, now).unwrap();
        let lix_k = lix.lix_value(k, now).unwrap();
        assert!(lix_g < lix_k, "g={lix_g} must be below k={lix_k}");
        // New page z = 11 on disk 2.
        let victim = lix.insert(PageId(11), now).unwrap();
        assert_eq!(victim, g, "victim must be g");
        assert_eq!(lix.chain_len(0), 6); // Disk1Q shrank
        assert_eq!(lix.chain_len(1), 5); // Disk2Q grew
    }

    #[test]
    fn rescore_rebuckets_chains_and_keeps_recency() {
        let mut lix = two_disk_lix(4);
        lix.insert(PageId(0), 0.0); // fast disk
        lix.insert(PageId(7), 1.0); // slow disk
        lix.insert(PageId(1), 2.0); // fast disk
        lix.on_hit(PageId(0), 3.0); // page 0 now most recent
        assert_eq!(lix.chain_len(0), 2);
        // New plan: pages 0..5 move to the slow disk and 5..10 to the fast
        // one; frequencies swap too.
        let ctx = PolicyContext {
            probs: vec![0.0; 10],
            page_disk: (0..10u16).map(|p| if p < 5 { 1 } else { 0 }).collect(),
            disk_freqs: vec![4, 1],
            alpha: 0.25,
        };
        lix.rescore(&ctx);
        assert_eq!(lix.len(), 3, "residency preserved");
        assert_eq!(lix.chain_pages(1), vec![PageId(0), PageId(1)]);
        assert_eq!(lix.chain_pages(0), vec![PageId(7)]);
        // Estimator state survives the swap.
        assert!(lix.estimator_state(PageId(0)).unwrap().0 > 0.0);
        assert_eq!(lix.estimator_state(PageId(0)).unwrap().1, 3.0);
        // The protocol keeps working after the swap.
        lix.on_hit(PageId(7), 5.0);
        lix.insert(PageId(8), 6.0);
        assert_eq!(lix.len(), 4);
    }

    #[test]
    fn hit_at_insert_instant_does_not_blow_up() {
        let mut lix = two_disk_lix(2);
        lix.insert(PageId(0), 5.0);
        lix.on_hit(PageId(0), 5.0); // elapsed 0 → clamped
        let v = lix.lix_value(PageId(0), 5.0).unwrap();
        assert!(v.is_finite() && v > 0.0);
    }

    #[test]
    fn capacity_one_replaces_every_miss() {
        let mut lix = two_disk_lix(1);
        assert_eq!(lix.insert(PageId(0), 0.0), None);
        assert_eq!(lix.insert(PageId(7), 1.0), Some(PageId(0)));
        assert_eq!(lix.insert(PageId(1), 2.0), Some(PageId(7)));
        assert_eq!(lix.len(), 1);
    }

    #[test]
    #[should_panic(expected = "nonexistent disk")]
    fn bad_page_disk_rejected() {
        let _ = LixPolicy::new(2, vec![0, 5], vec![1.0], 0.25);
    }

    #[test]
    #[should_panic(expected = "alpha must be in")]
    fn bad_alpha_rejected() {
        let _ = LixPolicy::new(2, vec![0], vec![1.0], 1.5);
    }
}
