//! Classic LRU replacement — the implementable baseline of Experiment 5.
//!
//! "LRU maintains the cache as a single linked-list of pages. When a page
//! in the cache is accessed, it is moved to the top of the list. On a cache
//! miss, the page at the end of the chain is chosen for replacement."

use bdisk_sched::PageId;

use crate::chain::LruChain;
use crate::CachePolicy;

/// Least-recently-used replacement over a single chain.
#[derive(Debug, Clone, Default)]
pub struct LruPolicy {
    chain: LruChain,
    capacity: usize,
}

impl LruPolicy {
    /// Creates an LRU cache holding `capacity` pages.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be positive");
        Self {
            chain: LruChain::new(),
            capacity,
        }
    }

    /// Pages from most to least recently used (for tests/inspection).
    pub fn iter(&self) -> impl Iterator<Item = PageId> + '_ {
        self.chain.iter()
    }
}

impl CachePolicy for LruPolicy {
    fn contains(&self, page: PageId) -> bool {
        self.chain.contains(page)
    }

    fn on_hit(&mut self, page: PageId, _now: f64) {
        let present = self.chain.move_to_front(page);
        debug_assert!(present, "hit on non-resident page {page}");
    }

    fn insert(&mut self, page: PageId, _now: f64) -> Option<PageId> {
        assert!(!self.contains(page), "page {page} already resident");
        let victim = if self.chain.len() == self.capacity {
            self.chain.pop_back()
        } else {
            None
        };
        self.chain.push_front(page);
        victim
    }

    fn invalidate(&mut self, page: PageId) -> bool {
        self.chain.remove(page)
    }

    fn len(&self) -> usize {
        self.chain.len()
    }

    fn capacity(&self) -> usize {
        self.capacity
    }

    fn name(&self) -> &'static str {
        "LRU"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evicts_least_recently_used() {
        let mut lru = LruPolicy::new(3);
        lru.insert(PageId(1), 0.0);
        lru.insert(PageId(2), 1.0);
        lru.insert(PageId(3), 2.0);
        lru.on_hit(PageId(1), 3.0); // 1 becomes MRU; LRU order: 1,3,2
        assert_eq!(lru.insert(PageId(4), 4.0), Some(PageId(2)));
        assert_eq!(lru.insert(PageId(5), 5.0), Some(PageId(3)));
        assert!(lru.contains(PageId(1)));
    }

    #[test]
    fn sequential_scan_cycles_everything() {
        // The classic LRU pathology: a scan larger than the cache evicts
        // every page in order.
        let mut lru = LruPolicy::new(3);
        let mut victims = Vec::new();
        for round in 0..2 {
            for page in 0..4u32 {
                if lru.contains(PageId(page)) {
                    lru.on_hit(PageId(page), 0.0);
                } else if let Some(v) = lru.insert(PageId(page), round as f64) {
                    victims.push(v.0);
                }
            }
        }
        assert_eq!(victims, vec![0, 1, 2, 3, 0]);
    }

    #[test]
    fn hits_protect_pages() {
        let mut lru = LruPolicy::new(2);
        lru.insert(PageId(10), 0.0);
        lru.insert(PageId(20), 1.0);
        for t in 2..10 {
            lru.on_hit(PageId(10), t as f64);
        }
        // 20 is LRU despite being inserted later.
        assert_eq!(lru.insert(PageId(30), 10.0), Some(PageId(20)));
    }

    #[test]
    fn capacity_one() {
        let mut lru = LruPolicy::new(1);
        assert_eq!(lru.insert(PageId(1), 0.0), None);
        assert_eq!(lru.insert(PageId(2), 1.0), Some(PageId(1)));
        assert_eq!(lru.len(), 1);
        assert_eq!(lru.capacity(), 1);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = LruPolicy::new(0);
    }

    #[test]
    fn iteration_order_is_recency() {
        let mut lru = LruPolicy::new(3);
        lru.insert(PageId(1), 0.0);
        lru.insert(PageId(2), 1.0);
        lru.insert(PageId(3), 2.0);
        lru.on_hit(PageId(2), 3.0);
        let order: Vec<u32> = lru.iter().map(|p| p.0).collect();
        assert_eq!(order, vec![2, 3, 1]);
    }
}
