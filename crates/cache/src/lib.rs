//! # bdisk-cache — client cache management for broadcast environments
//!
//! Section 3 of the Broadcast Disks paper argues that pushing data over a
//! shared broadcast *fundamentally changes the role of client caching*: a
//! client should cache not its hottest pages, but the pages whose local
//! access probability is high **relative to their broadcast frequency** —
//! hot pages on fast disks come around soon anyway.
//!
//! This crate implements the paper's five policies behind one trait:
//!
//! | Policy | Idea | Implementable? |
//! |--------|------|----------------|
//! | [`PPolicy`]  (`P`)   | evict lowest access probability | no (needs perfect knowledge) |
//! | [`PixPolicy`] (`PIX`) | evict lowest probability ÷ broadcast frequency | no |
//! | [`LruPolicy`] (`LRU`) | evict least recently used | yes |
//! | [`LixPolicy`] (`LIX`) | per-disk LRU chains + running probability estimate ÷ frequency | yes |
//! | `L` ([`LixPolicy::l_variant`]) | LIX with frequency ignored | yes |
//!
//! plus the extension policies the paper's Section 5.5 points at as
//! "improvements to LRU": [`LruKPolicy`] (LRU-K \[ONei93\], with an
//! optional broadcast-frequency-scaled variant) and [`TwoQPolicy`]
//! (simplified 2Q \[John94\]).
//!
//! All policies share the buffer-manager contract of the paper's simulator:
//! a requested page is always brought into the cache; when the cache is
//! full a victim is chosen *among the residents* and ejected. They also
//! support [`CachePolicy::invalidate`] for the volatile-data extension.

#![warn(missing_docs)]

pub mod chain;
pub mod lix;
pub mod lru;
pub mod lruk;
pub mod nocache;
pub mod obs;
pub mod pix;
pub mod twoq;

pub use chain::LruChain;
pub use lix::LixPolicy;
pub use lru::LruPolicy;
pub use lruk::LruKPolicy;
pub use nocache::NoCachePolicy;
pub use obs::{register_metrics, ObservedPolicy};
pub use pix::{PPolicy, PixPolicy, StaticValuePolicy};
pub use twoq::TwoQPolicy;

use bdisk_sched::PageId;

/// Replacement policy driven by the client loop.
///
/// The protocol per request for page `p` at virtual time `now`:
///
/// * cache probe: [`CachePolicy::contains`];
/// * on a hit: [`CachePolicy::on_hit`];
/// * on a miss (after the page arrives from the broadcast):
///   [`CachePolicy::insert`], which returns the evicted victim when the
///   cache was full.
pub trait CachePolicy: Send {
    /// True when `page` is cache-resident.
    fn contains(&self, page: PageId) -> bool;

    /// Records a cache hit on `page` at time `now`.
    fn on_hit(&mut self, page: PageId, now: f64);

    /// Inserts `page` (just fetched from the broadcast) at time `now`,
    /// evicting and returning a victim when the cache is full.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `page` is already resident — the client
    /// loop only inserts after a miss.
    fn insert(&mut self, page: PageId, now: f64) -> Option<PageId>;

    /// Drops `page` from the cache (server-sent invalidation for updated
    /// data). Returns `true` when the page was resident. Any history the
    /// policy keeps for the page is discarded with it.
    fn invalidate(&mut self, page: PageId) -> bool;

    /// Number of resident pages.
    fn len(&self) -> usize;

    /// True when no pages are resident.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Cache capacity in pages (`CacheSize`).
    fn capacity(&self) -> usize;

    /// Human-readable policy name (for reports).
    fn name(&self) -> &'static str;

    /// Re-scores every resident page under a *new* policy context — the
    /// broadcast plan changed (hot-swap) and page probabilities, disk
    /// assignments, and broadcast frequencies moved with it. Residency is
    /// preserved: the cache keeps exactly the pages it had, but future
    /// eviction decisions rank them under the new context. The default is
    /// a no-op, which is correct for history-only policies (LRU, LRU-K,
    /// 2Q) whose ordering never consults the context.
    fn rescore(&mut self, ctx: &PolicyContext) {
        let _ = ctx;
    }
}

/// Which replacement policy to run (config-level selector).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PolicyKind {
    /// Idealized probability-only replacement.
    P,
    /// Idealized cost-based replacement (probability ÷ frequency).
    Pix,
    /// Classic LRU.
    Lru,
    /// LIX without frequency knowledge (isolates the estimator).
    L,
    /// Implementable PIX approximation.
    Lix,
    /// LRU-2 \[ONei93\] — extension: one of the paper's suggested "improved
    /// LRU" bases.
    LruK,
    /// LRU-2 with broadcast-frequency scaling — extension: the LIX-style
    /// cost step applied to LRU-K.
    LruKX,
    /// Simplified 2Q \[John94\] — extension: the paper's other suggested
    /// base.
    TwoQ,
}

impl PolicyKind {
    /// The paper's five policies, in order of introduction.
    pub const ALL: [PolicyKind; 5] = [
        PolicyKind::P,
        PolicyKind::Pix,
        PolicyKind::Lru,
        PolicyKind::L,
        PolicyKind::Lix,
    ];

    /// The extension policies built on the paper's Section 5.5 suggestion.
    pub const EXTENSIONS: [PolicyKind; 3] = [PolicyKind::LruK, PolicyKind::LruKX, PolicyKind::TwoQ];

    /// Display name as used in the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            PolicyKind::P => "P",
            PolicyKind::Pix => "PIX",
            PolicyKind::Lru => "LRU",
            PolicyKind::L => "L",
            PolicyKind::Lix => "LIX",
            PolicyKind::LruK => "LRU-K",
            PolicyKind::LruKX => "LRU-K/X",
            PolicyKind::TwoQ => "2Q",
        }
    }

    /// True for the idealized policies that need perfect knowledge of
    /// access probabilities (not implementable in a real client).
    pub fn is_idealized(self) -> bool {
        matches!(self, PolicyKind::P | PolicyKind::Pix)
    }
}

impl std::fmt::Display for PolicyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for PolicyKind {
    type Err = String;

    /// Parses a policy name as used in the paper's figures (`"PIX"`,
    /// `"LRU-K"`, …), case-insensitively; `"LRUK"`/`"LRUKX"` are accepted
    /// for shell-friendliness.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_uppercase().as_str() {
            "P" => Ok(PolicyKind::P),
            "PIX" => Ok(PolicyKind::Pix),
            "LRU" => Ok(PolicyKind::Lru),
            "L" => Ok(PolicyKind::L),
            "LIX" => Ok(PolicyKind::Lix),
            "LRU-K" | "LRUK" => Ok(PolicyKind::LruK),
            "LRU-K/X" | "LRU-KX" | "LRUKX" => Ok(PolicyKind::LruKX),
            "2Q" | "TWOQ" => Ok(PolicyKind::TwoQ),
            other => Err(format!(
                "unknown policy {other:?} (expected P, PIX, LRU, L, LIX, LRU-K, LRU-K/X, or 2Q)"
            )),
        }
    }
}

/// Everything a policy may need to know about the environment: the true
/// per-physical-page access probabilities (idealized policies), the disk
/// of each page, and per-disk broadcast frequencies (cost-based policies).
#[derive(Debug, Clone)]
pub struct PolicyContext {
    /// True access probability of each physical page (index = page id).
    pub probs: Vec<f64>,
    /// Disk (0-based) of each physical page.
    pub page_disk: Vec<u16>,
    /// Relative broadcast frequency of each disk, fastest first.
    pub disk_freqs: Vec<u64>,
    /// EWMA constant for LIX/L probability estimation (paper: 0.25).
    pub alpha: f64,
}

impl PolicyContext {
    /// The per-page broadcast frequency implied by `page_disk` and
    /// `disk_freqs`.
    pub fn page_freq(&self, page: PageId) -> f64 {
        self.disk_freqs[self.page_disk[page.index()] as usize] as f64
    }
}

/// Builds a boxed policy of the requested kind with capacity `capacity`,
/// wrapped in an [`ObservedPolicy`] that feeds the cache-layer metrics
/// (hits, misses, evictions, invalidations) and journal events. The
/// wrapper is pure observation: every decision is the inner policy's.
///
/// Capacity 0 disables caching entirely (a [`NoCachePolicy`] is returned
/// regardless of `kind`), for measuring raw broadcast delay.
pub fn build_policy(
    kind: PolicyKind,
    capacity: usize,
    ctx: &PolicyContext,
) -> Box<dyn CachePolicy> {
    Box::new(ObservedPolicy::new(build_policy_raw(kind, capacity, ctx)))
}

/// Builds the bare (uninstrumented) policy; [`build_policy`] wraps this.
pub fn build_policy_raw(
    kind: PolicyKind,
    capacity: usize,
    ctx: &PolicyContext,
) -> Box<dyn CachePolicy> {
    if capacity == 0 {
        return Box::new(NoCachePolicy::new());
    }
    match kind {
        PolicyKind::P => Box::new(PPolicy::new(capacity, &ctx.probs)),
        PolicyKind::Pix => {
            let values: Vec<f64> = ctx
                .probs
                .iter()
                .enumerate()
                .map(|(p, &pr)| pr / ctx.page_freq(PageId(p as u32)))
                .collect();
            Box::new(StaticValuePolicy::new(capacity, &values, "PIX"))
        }
        PolicyKind::Lru => Box::new(LruPolicy::new(capacity)),
        PolicyKind::L => Box::new(LixPolicy::l_variant(
            capacity,
            ctx.page_disk.clone(),
            ctx.disk_freqs.len(),
            ctx.alpha,
        )),
        PolicyKind::Lix => Box::new(LixPolicy::new(
            capacity,
            ctx.page_disk.clone(),
            ctx.disk_freqs.iter().map(|&f| f as f64).collect(),
            ctx.alpha,
        )),
        PolicyKind::LruK => Box::new(LruKPolicy::new(capacity, 2)),
        PolicyKind::LruKX => {
            let freqs: Vec<f64> = (0..ctx.page_disk.len())
                .map(|p| ctx.page_freq(PageId(p as u32)))
                .collect();
            Box::new(LruKPolicy::with_frequencies(capacity, 2, freqs))
        }
        PolicyKind::TwoQ => Box::new(TwoQPolicy::new(capacity)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> PolicyContext {
        PolicyContext {
            probs: vec![0.4, 0.3, 0.2, 0.1],
            page_disk: vec![0, 0, 1, 1],
            disk_freqs: vec![2, 1],
            alpha: 0.25,
        }
    }

    #[test]
    fn build_all_policies() {
        for kind in PolicyKind::ALL {
            let p = build_policy(kind, 2, &ctx());
            assert_eq!(p.capacity(), 2);
            assert_eq!(p.len(), 0);
            assert!(p.is_empty());
            assert_eq!(p.name(), kind.name());
        }
    }

    #[test]
    fn kind_metadata() {
        assert!(PolicyKind::P.is_idealized());
        assert!(PolicyKind::Pix.is_idealized());
        assert!(!PolicyKind::Lru.is_idealized());
        assert!(!PolicyKind::Lix.is_idealized());
        assert_eq!(PolicyKind::Lix.to_string(), "LIX");
    }

    #[test]
    fn kind_round_trips_through_from_str() {
        for kind in PolicyKind::ALL.into_iter().chain(PolicyKind::EXTENSIONS) {
            let parsed: PolicyKind = kind.name().parse().unwrap();
            assert_eq!(parsed, kind);
        }
        assert_eq!("lix".parse::<PolicyKind>().unwrap(), PolicyKind::Lix);
        assert_eq!("lruk".parse::<PolicyKind>().unwrap(), PolicyKind::LruK);
        assert!("FIFO".parse::<PolicyKind>().is_err());
    }

    #[test]
    fn page_freq_lookup() {
        let c = ctx();
        assert_eq!(c.page_freq(PageId(0)), 2.0);
        assert_eq!(c.page_freq(PageId(3)), 1.0);
    }

    #[test]
    fn generic_policy_protocol() {
        // The same driver loop must work for every policy.
        for kind in PolicyKind::ALL {
            let mut p = build_policy(kind, 2, &ctx());
            assert!(!p.contains(PageId(0)));
            assert_eq!(p.insert(PageId(0), 1.0), None);
            assert_eq!(p.insert(PageId(1), 2.0), None);
            assert_eq!(p.len(), 2);
            p.on_hit(PageId(0), 3.0);
            // Third insert must evict exactly one of the residents.
            let victim = p.insert(PageId(2), 4.0).expect("cache full");
            assert!(
                victim == PageId(0) || victim == PageId(1),
                "{kind}: {victim}"
            );
            assert_eq!(p.len(), 2);
            assert!(p.contains(PageId(2)));
        }
    }
}
