//! A slab-backed doubly-linked LRU chain.
//!
//! LRU and LIX both need O(1) move-to-front, O(1) eviction from the back,
//! and O(1) membership lookup. This chain stores nodes in a `Vec` slab with
//! index links (no per-node allocation, no unsafe) and an index map from
//! page id to slab slot.

use std::collections::HashMap;

use bdisk_sched::PageId;

const NIL: u32 = u32::MAX;

#[derive(Debug, Clone, Copy)]
struct Node {
    page: PageId,
    prev: u32,
    next: u32,
}

/// Doubly-linked list of pages, most recently used at the front.
#[derive(Debug, Clone, Default)]
pub struct LruChain {
    nodes: Vec<Node>,
    free: Vec<u32>,
    index: HashMap<PageId, u32>,
    head: u32,
    tail: u32,
}

impl LruChain {
    /// Creates an empty chain.
    pub fn new() -> Self {
        Self {
            nodes: Vec::new(),
            free: Vec::new(),
            index: HashMap::new(),
            head: NIL,
            tail: NIL,
        }
    }

    /// Number of pages in the chain.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// True when the chain holds no pages.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// True when `page` is in the chain.
    pub fn contains(&self, page: PageId) -> bool {
        self.index.contains_key(&page)
    }

    /// Pushes `page` at the front (most recently used).
    ///
    /// # Panics
    ///
    /// Panics if `page` is already present.
    pub fn push_front(&mut self, page: PageId) {
        assert!(!self.contains(page), "page {page} already in chain");
        let slot = match self.free.pop() {
            Some(s) => {
                self.nodes[s as usize] = Node {
                    page,
                    prev: NIL,
                    next: self.head,
                };
                s
            }
            None => {
                self.nodes.push(Node {
                    page,
                    prev: NIL,
                    next: self.head,
                });
                (self.nodes.len() - 1) as u32
            }
        };
        if self.head != NIL {
            self.nodes[self.head as usize].prev = slot;
        } else {
            self.tail = slot;
        }
        self.head = slot;
        self.index.insert(page, slot);
    }

    /// Moves `page` to the front. Returns `false` if absent.
    pub fn move_to_front(&mut self, page: PageId) -> bool {
        let Some(&slot) = self.index.get(&page) else {
            return false;
        };
        if self.head == slot {
            return true;
        }
        self.unlink(slot);
        let node = &mut self.nodes[slot as usize];
        node.prev = NIL;
        node.next = self.head;
        self.nodes[self.head as usize].prev = slot;
        self.head = slot;
        true
    }

    /// The page at the back (least recently used).
    pub fn back(&self) -> Option<PageId> {
        (self.tail != NIL).then(|| self.nodes[self.tail as usize].page)
    }

    /// Removes and returns the least recently used page.
    pub fn pop_back(&mut self) -> Option<PageId> {
        let page = self.back()?;
        self.remove(page);
        Some(page)
    }

    /// Removes `page` from the chain. Returns `false` if absent.
    pub fn remove(&mut self, page: PageId) -> bool {
        let Some(slot) = self.index.remove(&page) else {
            return false;
        };
        self.unlink(slot);
        self.free.push(slot);
        true
    }

    /// Iterates pages from most to least recently used.
    pub fn iter(&self) -> impl Iterator<Item = PageId> + '_ {
        let mut cur = self.head;
        std::iter::from_fn(move || {
            if cur == NIL {
                return None;
            }
            let node = &self.nodes[cur as usize];
            cur = node.next;
            Some(node.page)
        })
    }

    /// Detaches `slot` from its neighbours, fixing head/tail.
    fn unlink(&mut self, slot: u32) {
        let Node { prev, next, .. } = self.nodes[slot as usize];
        if prev != NIL {
            self.nodes[prev as usize].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.nodes[next as usize].prev = prev;
        } else {
            self.tail = prev;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pages(chain: &LruChain) -> Vec<u32> {
        chain.iter().map(|p| p.0).collect()
    }

    #[test]
    fn push_and_order() {
        let mut c = LruChain::new();
        c.push_front(PageId(1));
        c.push_front(PageId(2));
        c.push_front(PageId(3));
        assert_eq!(pages(&c), vec![3, 2, 1]);
        assert_eq!(c.back(), Some(PageId(1)));
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn move_to_front_reorders() {
        let mut c = LruChain::new();
        for i in 1..=3 {
            c.push_front(PageId(i));
        }
        assert!(c.move_to_front(PageId(1)));
        assert_eq!(pages(&c), vec![1, 3, 2]);
        assert_eq!(c.back(), Some(PageId(2)));
        // Front element is a no-op.
        assert!(c.move_to_front(PageId(1)));
        assert_eq!(pages(&c), vec![1, 3, 2]);
        // Absent element.
        assert!(!c.move_to_front(PageId(9)));
    }

    #[test]
    fn pop_back_is_lru_eviction() {
        let mut c = LruChain::new();
        for i in 1..=3 {
            c.push_front(PageId(i));
        }
        c.move_to_front(PageId(1));
        assert_eq!(c.pop_back(), Some(PageId(2)));
        assert_eq!(c.pop_back(), Some(PageId(3)));
        assert_eq!(c.pop_back(), Some(PageId(1)));
        assert_eq!(c.pop_back(), None);
        assert!(c.is_empty());
    }

    #[test]
    fn remove_middle() {
        let mut c = LruChain::new();
        for i in 1..=4 {
            c.push_front(PageId(i));
        }
        assert!(c.remove(PageId(3)));
        assert_eq!(pages(&c), vec![4, 2, 1]);
        assert!(!c.remove(PageId(3)));
        assert!(!c.contains(PageId(3)));
    }

    #[test]
    fn slots_are_reused() {
        let mut c = LruChain::new();
        for i in 0..100 {
            c.push_front(PageId(i));
        }
        for i in 0..100 {
            assert!(c.remove(PageId(i)));
        }
        for i in 100..200 {
            c.push_front(PageId(i));
        }
        // The slab should not have grown past the first 100 nodes.
        assert!(c.nodes.len() <= 100, "slab grew to {}", c.nodes.len());
        assert_eq!(c.len(), 100);
    }

    #[test]
    fn single_element_edge_cases() {
        let mut c = LruChain::new();
        c.push_front(PageId(7));
        assert_eq!(c.back(), Some(PageId(7)));
        assert!(c.move_to_front(PageId(7)));
        assert_eq!(c.pop_back(), Some(PageId(7)));
        assert_eq!(c.back(), None);
        // Reuse after emptying.
        c.push_front(PageId(8));
        assert_eq!(pages(&c), vec![8]);
    }

    #[test]
    #[should_panic(expected = "already in chain")]
    fn duplicate_push_panics() {
        let mut c = LruChain::new();
        c.push_front(PageId(1));
        c.push_front(PageId(1));
    }

    #[test]
    fn interleaved_stress() {
        // Mirror operations against a Vec model.
        let mut c = LruChain::new();
        let mut model: Vec<u32> = Vec::new(); // front = MRU
        let mut x = 12345u64;
        let mut rand = move || {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (x >> 33) as u32
        };
        for _ in 0..10_000 {
            let op = rand() % 4;
            let page = rand() % 50;
            match op {
                0 => {
                    if !model.contains(&page) {
                        c.push_front(PageId(page));
                        model.insert(0, page);
                    }
                }
                1 => {
                    let ok = c.move_to_front(PageId(page));
                    let pos = model.iter().position(|&p| p == page);
                    assert_eq!(ok, pos.is_some());
                    if let Some(i) = pos {
                        model.remove(i);
                        model.insert(0, page);
                    }
                }
                2 => {
                    let got = c.pop_back();
                    let want = model.pop();
                    assert_eq!(got.map(|p| p.0), want);
                }
                _ => {
                    let ok = c.remove(PageId(page));
                    let pos = model.iter().position(|&p| p == page);
                    assert_eq!(ok, pos.is_some());
                    if let Some(i) = pos {
                        model.remove(i);
                    }
                }
            }
            assert_eq!(c.len(), model.len());
            assert_eq!(pages(&c), model);
        }
    }
}
