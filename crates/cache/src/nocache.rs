//! A pass-through "cache" of capacity zero.
//!
//! Every request misses and nothing is retained. Used to measure raw
//! broadcast delay (e.g. the Table 1 cross-check), where even the paper's
//! `CacheSize = 1` would retain the page just fetched.

use bdisk_sched::PageId;

use crate::CachePolicy;

/// The no-op policy: capacity 0, never holds a page.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoCachePolicy;

impl NoCachePolicy {
    /// Creates the policy.
    pub fn new() -> Self {
        Self
    }
}

impl CachePolicy for NoCachePolicy {
    fn contains(&self, _page: PageId) -> bool {
        false
    }

    fn on_hit(&mut self, _page: PageId, _now: f64) {
        unreachable!("a no-cache policy never hits");
    }

    fn insert(&mut self, _page: PageId, _now: f64) -> Option<PageId> {
        None
    }

    fn invalidate(&mut self, _page: PageId) -> bool {
        false
    }

    fn len(&self) -> usize {
        0
    }

    fn capacity(&self) -> usize {
        0
    }

    fn name(&self) -> &'static str {
        "none"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn never_contains_never_evicts() {
        let mut p = NoCachePolicy::new();
        assert!(!p.contains(PageId(0)));
        assert_eq!(p.insert(PageId(0), 1.0), None);
        assert!(!p.contains(PageId(0)));
        assert_eq!(p.len(), 0);
        assert_eq!(p.capacity(), 0);
        assert!(p.is_empty());
        assert_eq!(p.name(), "none");
    }

    #[test]
    #[should_panic(expected = "never hits")]
    fn hit_is_a_bug() {
        let mut p = NoCachePolicy::new();
        p.on_hit(PageId(0), 0.0);
    }
}
