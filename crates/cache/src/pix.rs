//! The idealized policies `P` and `PIX` (Sections 3 and 5.3–5.4).
//!
//! Both evict the resident page with the smallest *static* value:
//!
//! * `P` uses the page's access probability — the classical "keep the
//!   hottest pages" ideal that LRU approximates;
//! * `PIX` uses probability ÷ broadcast frequency — the paper's cost-based
//!   ideal ("it can be shown that under certain assumptions, an optimal
//!   replacement strategy is one that replaces the cache-resident page
//!   having the lowest ratio between its probability of access and its
//!   frequency of broadcast").
//!
//! Neither is implementable in a real client: they require perfect
//! knowledge of access probabilities and a global comparison across the
//! cache. In the simulator the probabilities are known exactly, and the
//! global min is kept in an ordered set over precomputed value *ranks*
//! (values are static, so ranking them once avoids comparing floats at
//! every eviction and gives deterministic tie-breaks).

use std::collections::BTreeSet;

use bdisk_sched::PageId;

use crate::{CachePolicy, PolicyContext};

/// Evicts the resident page with the smallest fixed per-page value.
///
/// `P` and `PIX` are the two instantiations; the value vector is the only
/// difference.
#[derive(Debug, Clone)]
pub struct StaticValuePolicy {
    capacity: usize,
    /// Rank of each page's value (0 = smallest value = first to evict);
    /// ties broken by page id for determinism.
    rank: Vec<u32>,
    /// Resident pages ordered by rank.
    resident: BTreeSet<u32>,
    /// Inverse of `rank`: rank → page.
    page_of_rank: Vec<u32>,
    name: &'static str,
}

impl StaticValuePolicy {
    /// Creates the policy for pages `0..values.len()`, evicting the
    /// smallest `values[page]` first.
    pub fn new(capacity: usize, values: &[f64], name: &'static str) -> Self {
        assert!(capacity > 0, "cache capacity must be positive");
        let mut order: Vec<u32> = (0..values.len() as u32).collect();
        order.sort_by(|&a, &b| {
            values[a as usize]
                .partial_cmp(&values[b as usize])
                .expect("values must not be NaN")
                .then(a.cmp(&b))
        });
        let mut rank = vec![0u32; values.len()];
        for (r, &p) in order.iter().enumerate() {
            rank[p as usize] = r as u32;
        }
        Self {
            capacity,
            rank,
            resident: BTreeSet::new(),
            page_of_rank: order,
            name,
        }
    }

    /// Replaces the per-page value vector, keeping residency: the same
    /// pages stay cached, but are re-ranked under `values` so future
    /// evictions follow the new ordering (plan hot-swap support).
    pub fn reset_values(&mut self, values: &[f64]) {
        let residents: Vec<u32> = self
            .resident
            .iter()
            .map(|&r| self.page_of_rank[r as usize])
            .collect();
        let fresh = Self::new(self.capacity, values, self.name);
        self.rank = fresh.rank;
        self.page_of_rank = fresh.page_of_rank;
        self.resident = residents
            .into_iter()
            .map(|p| self.rank[p as usize])
            .collect();
    }
}

impl CachePolicy for StaticValuePolicy {
    fn contains(&self, page: PageId) -> bool {
        self.resident.contains(&self.rank[page.index()])
    }

    fn on_hit(&mut self, _page: PageId, _now: f64) {
        // Values are static: hits carry no information.
    }

    fn insert(&mut self, page: PageId, _now: f64) -> Option<PageId> {
        assert!(!self.contains(page), "page {page} already resident");
        let victim = if self.resident.len() == self.capacity {
            let &lowest = self.resident.iter().next().expect("cache is full");
            self.resident.remove(&lowest);
            Some(PageId(self.page_of_rank[lowest as usize]))
        } else {
            None
        };
        self.resident.insert(self.rank[page.index()]);
        victim
    }

    fn invalidate(&mut self, page: PageId) -> bool {
        self.resident.remove(&self.rank[page.index()])
    }

    fn len(&self) -> usize {
        self.resident.len()
    }

    fn capacity(&self) -> usize {
        self.capacity
    }

    fn name(&self) -> &'static str {
        self.name
    }

    fn rescore(&mut self, ctx: &PolicyContext) {
        // The value vector is derived from the context the same way
        // `build_policy_raw` derives it at construction.
        match self.name {
            "P" => self.reset_values(&ctx.probs),
            "PIX" => {
                let values: Vec<f64> = ctx
                    .probs
                    .iter()
                    .enumerate()
                    .map(|(p, &pr)| pr / ctx.page_freq(PageId(p as u32)))
                    .collect();
                self.reset_values(&values);
            }
            _ => {}
        }
    }
}

/// The idealized `P` policy: evict the lowest access probability.
#[derive(Debug, Clone)]
pub struct PPolicy(StaticValuePolicy);

impl PPolicy {
    /// Creates a `P` policy with perfect knowledge of `probs`.
    pub fn new(capacity: usize, probs: &[f64]) -> Self {
        Self(StaticValuePolicy::new(capacity, probs, "P"))
    }
}

impl CachePolicy for PPolicy {
    fn contains(&self, page: PageId) -> bool {
        self.0.contains(page)
    }
    fn on_hit(&mut self, page: PageId, now: f64) {
        self.0.on_hit(page, now)
    }
    fn insert(&mut self, page: PageId, now: f64) -> Option<PageId> {
        self.0.insert(page, now)
    }
    fn invalidate(&mut self, page: PageId) -> bool {
        self.0.invalidate(page)
    }
    fn len(&self) -> usize {
        self.0.len()
    }
    fn capacity(&self) -> usize {
        self.0.capacity()
    }
    fn name(&self) -> &'static str {
        "P"
    }
    fn rescore(&mut self, ctx: &PolicyContext) {
        self.0.rescore(ctx)
    }
}

/// The idealized `PIX` policy: evict the lowest probability ÷ frequency.
#[derive(Debug, Clone)]
pub struct PixPolicy(StaticValuePolicy);

impl PixPolicy {
    /// Creates a `PIX` policy from per-page probabilities and broadcast
    /// frequencies.
    ///
    /// # Panics
    ///
    /// Panics if the slices differ in length or a frequency is zero.
    pub fn new(capacity: usize, probs: &[f64], freqs: &[f64]) -> Self {
        assert_eq!(probs.len(), freqs.len(), "probs and freqs must align");
        let values: Vec<f64> = probs
            .iter()
            .zip(freqs)
            .map(|(&p, &x)| {
                assert!(x > 0.0, "broadcast frequency must be positive");
                p / x
            })
            .collect();
        Self(StaticValuePolicy::new(capacity, &values, "PIX"))
    }
}

impl CachePolicy for PixPolicy {
    fn contains(&self, page: PageId) -> bool {
        self.0.contains(page)
    }
    fn on_hit(&mut self, page: PageId, now: f64) {
        self.0.on_hit(page, now)
    }
    fn insert(&mut self, page: PageId, now: f64) -> Option<PageId> {
        self.0.insert(page, now)
    }
    fn invalidate(&mut self, page: PageId) -> bool {
        self.0.invalidate(page)
    }
    fn len(&self) -> usize {
        self.0.len()
    }
    fn capacity(&self) -> usize {
        self.0.capacity()
    }
    fn name(&self) -> &'static str {
        "PIX"
    }
    fn rescore(&mut self, ctx: &PolicyContext) {
        self.0.rescore(ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn p_evicts_lowest_probability() {
        let mut p = PPolicy::new(2, &[0.5, 0.3, 0.2]);
        p.insert(PageId(1), 0.0);
        p.insert(PageId(2), 1.0);
        // Inserting the hot page evicts page 2 (prob 0.2 < 0.3).
        assert_eq!(p.insert(PageId(0), 2.0), Some(PageId(2)));
        assert!(p.contains(PageId(0)));
        assert!(p.contains(PageId(1)));
    }

    #[test]
    fn p_keeps_hottest_in_steady_state() {
        let probs = [0.4, 0.3, 0.2, 0.1];
        let mut p = PPolicy::new(2, &probs);
        for page in [3, 2, 1, 0, 3, 2, 1, 0u32] {
            if !p.contains(PageId(page)) {
                p.insert(PageId(page), 0.0);
            }
        }
        // Steady state: the two hottest pages are resident.
        assert!(p.contains(PageId(0)));
        assert!(p.contains(PageId(1)));
        assert!(!p.contains(PageId(2)));
        assert!(!p.contains(PageId(3)));
    }

    #[test]
    fn pix_weighs_frequency() {
        // The paper's Section 3 example: page 0 accessed 1% and broadcast
        // "1%" (frequent); page 1 accessed 0.5% but broadcast 0.1%
        // (rare). PIX prefers keeping page 1.
        let probs = [0.01, 0.005];
        let freqs = [10.0, 1.0];
        let mut pix = PixPolicy::new(1, &probs, &freqs);
        pix.insert(PageId(0), 0.0);
        // pix(0) = 0.001 < pix(1) = 0.005 → page 0 is the victim.
        assert_eq!(pix.insert(PageId(1), 1.0), Some(PageId(0)));
        assert!(pix.contains(PageId(1)));
    }

    #[test]
    fn p_vs_pix_disagree_exactly_as_in_section_3() {
        // Same scenario, P policy: page 0 has the higher probability so P
        // keeps page 0 and evicts page 1 instead.
        let probs = [0.01, 0.005];
        let mut p = PPolicy::new(1, &probs);
        p.insert(PageId(1), 0.0);
        assert_eq!(p.insert(PageId(0), 1.0), Some(PageId(1)));
        assert!(p.contains(PageId(0)));
    }

    #[test]
    fn capacity_one_always_replaces() {
        let mut p = PPolicy::new(1, &[0.6, 0.4]);
        assert_eq!(p.insert(PageId(0), 0.0), None);
        assert_eq!(p.insert(PageId(1), 1.0), Some(PageId(0)));
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn ties_break_deterministically_by_page_id() {
        // Equal values: lowest page id evicted first.
        let mut p = StaticValuePolicy::new(2, &[0.1, 0.1, 0.1], "T");
        p.insert(PageId(2), 0.0);
        p.insert(PageId(0), 1.0);
        assert_eq!(p.insert(PageId(1), 2.0), Some(PageId(0)));
    }

    #[test]
    fn hit_does_not_change_order() {
        let mut p = PPolicy::new(2, &[0.5, 0.3, 0.2]);
        p.insert(PageId(1), 0.0);
        p.insert(PageId(2), 1.0);
        // Many hits on the cold page don't save it from eviction.
        for t in 0..10 {
            p.on_hit(PageId(2), t as f64);
        }
        assert_eq!(p.insert(PageId(0), 99.0), Some(PageId(2)));
    }

    #[test]
    #[should_panic(expected = "already resident")]
    fn double_insert_panics() {
        let mut p = PPolicy::new(2, &[0.5, 0.5]);
        p.insert(PageId(0), 0.0);
        p.insert(PageId(0), 1.0);
    }

    #[test]
    #[should_panic(expected = "must align")]
    fn pix_rejects_mismatched_inputs() {
        let _ = PixPolicy::new(1, &[0.5], &[1.0, 2.0]);
    }

    #[test]
    fn rescore_keeps_residents_and_reorders_evictions() {
        use crate::PolicyContext;
        // Under the old probs, page 2 is coldest; after rescore page 0 is.
        let mut p = PPolicy::new(2, &[0.5, 0.3, 0.2]);
        p.insert(PageId(0), 0.0);
        p.insert(PageId(2), 1.0);
        let ctx = PolicyContext {
            probs: vec![0.1, 0.4, 0.5],
            page_disk: vec![0, 0, 0],
            disk_freqs: vec![1],
            alpha: 0.25,
        };
        p.rescore(&ctx);
        // Residency preserved across the rescore.
        assert!(p.contains(PageId(0)) && p.contains(PageId(2)));
        assert_eq!(p.len(), 2);
        // The next eviction follows the *new* ranking: page 0 is coldest.
        assert_eq!(p.insert(PageId(1), 2.0), Some(PageId(0)));

        // PIX rescoring folds the new frequencies in: page 0 hot but
        // frequent (pix 0.1), page 2 cooler but rare (pix 0.4).
        let mut pix = StaticValuePolicy::new(2, &[0.9, 0.05, 0.05], "PIX");
        pix.insert(PageId(0), 0.0);
        pix.insert(PageId(2), 1.0);
        let ctx = PolicyContext {
            probs: vec![0.5, 0.1, 0.4],
            page_disk: vec![0, 0, 1],
            disk_freqs: vec![5, 1],
            alpha: 0.25,
        };
        pix.rescore(&ctx);
        assert_eq!(pix.insert(PageId(1), 2.0), Some(PageId(0)));
    }

    #[test]
    fn zero_probability_pages_evicted_first() {
        let probs = [0.0, 0.5, 0.0, 0.5];
        let mut p = PPolicy::new(3, &probs);
        p.insert(PageId(1), 0.0);
        p.insert(PageId(0), 1.0);
        p.insert(PageId(3), 2.0);
        assert_eq!(p.insert(PageId(2), 3.0), Some(PageId(0)));
    }
}
