//! Property tests for the LIX policy's two structural invariants:
//!
//! 1. the per-disk chains are a *partition* of the resident pages — every
//!    cached page is on exactly one chain, the chain of its own disk, and
//!    nothing else is on any chain;
//! 2. the EWMA estimator implements the paper's recurrence
//!    `p ← α/(now−t) + (1−α)·p` exactly, and the evaluated estimate is
//!    monotone in access recency (fresher access ⇒ higher estimate) and
//!    monotone-decaying in idle time.

use std::collections::{BTreeSet, HashMap};

use bdisk_cache::{CachePolicy, LixPolicy};
use bdisk_sched::PageId;
use proptest::prelude::*;

const ALPHA: f64 = 0.25;
const UNIVERSE: u32 = 30;

/// Builds a LIX cache over `disks` disks with pages striped `page % disks`
/// and distinct per-disk frequencies.
fn build(capacity: usize, disks: usize) -> (LixPolicy, Vec<u16>) {
    let page_disk: Vec<u16> = (0..UNIVERSE as u16).map(|p| p % disks as u16).collect();
    let freqs: Vec<f64> = (0..disks).map(|d| (disks - d) as f64).collect();
    let lix = LixPolicy::new(capacity, page_disk.clone(), freqs, ALPHA);
    (lix, page_disk)
}

proptest! {
    /// After every operation (hit, insert-with-eviction, invalidate) the
    /// chains partition the resident set.
    #[test]
    fn chains_partition_resident_pages(
        capacity in 1usize..12,
        disks in 1usize..4,
        ops in prop::collection::vec((0u32..UNIVERSE, 1u32..5, 0u8..8), 1..200),
    ) {
        let (mut lix, page_disk) = build(capacity, disks);
        let mut t = 0.0;
        for (page, dt, kind) in ops {
            t += dt as f64;
            let page = PageId(page);
            if kind == 0 {
                // Occasional invalidation (server update semantics).
                lix.invalidate(page);
            } else if lix.contains(page) {
                lix.on_hit(page, t);
            } else {
                lix.insert(page, t);
            }

            // Chains are disjoint, hold only resident pages, and each page
            // sits on the chain of its own disk.
            let mut on_chains = BTreeSet::new();
            for d in 0..lix.num_chains() {
                for p in lix.chain_pages(d) {
                    prop_assert!(on_chains.insert(p), "{p} on two chains");
                    prop_assert!(lix.contains(p), "{p} chained but not resident");
                    prop_assert_eq!(usize::from(page_disk[p.index()]), d,
                        "{} chained under disk {} not its own", p, d);
                }
            }
            // Conversely every resident page is on some chain: the chains
            // cover the resident set exactly.
            prop_assert_eq!(on_chains.len(), lix.len());
            for p in 0..UNIVERSE {
                let pid = PageId(p);
                prop_assert_eq!(lix.contains(pid), on_chains.contains(&pid));
            }
            prop_assert!(lix.len() <= capacity);
        }
    }

    /// A shadow model of the estimator: every hit must update `(p, t)` by
    /// exactly `p ← α/(now−t) + (1−α)·p; t ← now`, every insert must start
    /// at `(0, now)`, bit-for-bit.
    #[test]
    fn estimator_follows_paper_recurrence_exactly(
        capacity in 1usize..12,
        disks in 1usize..4,
        ops in prop::collection::vec((0u32..UNIVERSE, 1u32..5), 1..200),
    ) {
        let (mut lix, _) = build(capacity, disks);
        let mut shadow: HashMap<PageId, (f64, f64)> = HashMap::new();
        let mut t = 0.0;
        for (page, dt) in ops {
            t += dt as f64;
            let page = PageId(page);
            if lix.contains(page) {
                let (p_old, t_old) = shadow[&page];
                lix.on_hit(page, t);
                let expected = ALPHA / (t - t_old).max(1e-9) + (1.0 - ALPHA) * p_old;
                shadow.insert(page, (expected, t));
            } else if let Some(victim) = {
                shadow.insert(page, (0.0, t));
                lix.insert(page, t)
            } {
                shadow.remove(&victim);
            }
            for (&p, &(sp, st)) in &shadow {
                prop_assert_eq!(lix.estimator_state(p), Some((sp, st)),
                    "estimator state diverged from the recurrence for {}", p);
            }
        }
    }

    /// Two freshly inserted pages have the same stored estimate (p = 0), so
    /// the evaluated estimate is governed purely by recency: the page
    /// inserted later (fresher) always scores higher, and both estimates
    /// decay monotonically as the evaluation instant recedes.
    #[test]
    fn estimate_monotone_in_recency_and_decays(
        t_old in 0.0f64..100.0,
        gap in 0.001f64..100.0,
        wait in 0.001f64..100.0,
        extra in 0.001f64..100.0,
    ) {
        let (mut lix, _) = build(4, 1);
        let stale = PageId(0);
        let fresh = PageId(1);
        let t_new = t_old + gap;
        let now = t_new + wait;
        lix.insert(stale, t_old);
        lix.insert(fresh, t_new);
        prop_assert_eq!(lix.estimator_state(stale), Some((0.0, t_old)));
        prop_assert_eq!(lix.estimator_state(fresh), Some((0.0, t_new)));

        // Monotone in recency at any common evaluation instant.
        let v_stale = lix.lix_value(stale, now).unwrap();
        let v_fresh = lix.lix_value(fresh, now).unwrap();
        prop_assert!(v_fresh > v_stale,
            "fresh {} must outscore stale {}", v_fresh, v_stale);

        // With p = 0 the estimate is exactly α/(now − t).
        prop_assert!((v_fresh - ALPHA / (now - t_new)).abs() <= 1e-12 * v_fresh);

        // Monotone decay with idle time.
        let later = now + extra;
        prop_assert!(lix.lix_value(fresh, later).unwrap() < v_fresh);
        prop_assert!(lix.lix_value(stale, later).unwrap() < v_stale);
    }
}
