//! # Broadcast Disks
//!
//! A complete reproduction of *"Broadcast Disks: Data Management for
//! Asymmetric Communication Environments"* (Acharya, Alonso, Franklin,
//! Zdonik — SIGMOD 1995) as a Rust workspace.
//!
//! This facade crate re-exports the public API of every subsystem:
//!
//! * [`sched`] — broadcast program generation (the multi-disk algorithm of
//!   Section 2, flat/skewed/random baselines, schedule queries).
//! * [`cache`] — client cache replacement policies (P, PIX, LRU, L, LIX).
//! * [`workload`] — region-Zipf client access distributions and the
//!   Offset/Noise logical-to-physical mappings of Section 4.2.
//! * [`sim`] — the Section-4 simulation model (client/server processes,
//!   steady-state metrics, parameter sweeps).
//! * [`analytic`] — closed-form expected-delay models (Table 1, the Bus
//!   Stop Paradox, bandwidth allocation).
//! * [`desim`] — the discrete-event simulation kernel underneath it all.
//!
//! ## Quickstart
//!
//! ```
//! use broadcast_disks::prelude::*;
//!
//! // Three-disk configuration D5 = <500, 2000, 2500> at Delta = 3.
//! let disks = DiskLayout::with_delta(&[500, 2000, 2500], 3).unwrap();
//! let program = BroadcastProgram::generate(&disks).unwrap();
//!
//! // The fastest disk spins 7x the slowest: rel_freq(i) = (N - i)·Δ + 1.
//! assert_eq!(program.disk_frequencies(), &[7, 4, 1]);
//!
//! // Simulate a cache-less client (Experiment 1 point).
//! let cfg = SimConfig {
//!     cache_size: 1,
//!     noise: 0.0,
//!     offset: 0,
//!     policy: PolicyKind::Pix,
//!     requests: 5_000,
//!     ..SimConfig::default()
//! };
//! let outcome = simulate(&cfg, &disks, 42).unwrap();
//! assert!(outcome.mean_response_time > 0.0);
//! ```

pub use bdesim as desim;
pub use bdisk_analytic as analytic;
pub use bdisk_cache as cache;
pub use bdisk_sched as sched;
pub use bdisk_sim as sim;
pub use bdisk_workload as workload;

/// One-stop imports for application code and the examples.
pub mod prelude {
    pub use bdisk_analytic::{expected_delay, expected_response_time, ProgramAnalysis};
    pub use bdisk_cache::{CachePolicy, PolicyKind};
    pub use bdisk_sched::{BroadcastProgram, DiskLayout, PageId, Slot};
    pub use bdisk_sim::{simulate, AccessLocation, SimConfig, SimOutcome};
    pub use bdisk_workload::{Mapping, RegionZipf};
}
