//! Offline drop-in subset of the `rand` 0.9 API.
//!
//! This workspace builds in environments with no crates.io access, so the
//! external `rand` crate is replaced by this vendored implementation of the
//! exact surface the repo uses: [`Rng::random`], [`Rng::random_range`],
//! [`SeedableRng::seed_from_u64`], [`rngs::StdRng`], and
//! [`seq::SliceRandom::shuffle`].
//!
//! `StdRng` here is xoshiro256++ seeded via SplitMix64 — not the ChaCha
//! generator of the real crate, but a high-quality, deterministic PRNG that
//! is more than adequate for simulation workloads. Determinism is the only
//! contract the repo relies on: the same seed always yields the same
//! stream.

#![warn(missing_docs)]

pub mod rngs;
pub mod seq;

/// A source of randomness (subset of `rand::Rng`).
pub trait Rng {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniformly random value of `T` over its natural domain
    /// (`[0, 1)` for floats, the full range for integers).
    fn random<T: Random>(&mut self) -> T
    where
        Self: Sized,
    {
        T::random(self)
    }

    /// A uniformly random value in `range` (half-open or inclusive).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator that can be constructed from a seed (subset of
/// `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds the generator deterministically from a `u64` seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that [`Rng::random`] can produce.
pub trait Random {
    /// Draws one uniformly random value.
    fn random<R: Rng>(rng: &mut R) -> Self;
}

impl Random for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn random<R: Rng>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Random for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn random<R: Rng>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Random for bool {
    fn random<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_random_int {
    ($($t:ty),*) => {$(
        impl Random for $t {
            fn random<R: Rng>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_random_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges that [`Rng::random_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one uniformly random value from the range.
    fn sample_from<R: Rng>(self, rng: &mut R) -> T;
}

/// Uniform draw from `[0, span)` by multiply-shift (Lemire); the modulo
/// bias at 64-bit width is far below anything a simulation could observe.
#[inline]
fn below<R: Rng>(rng: &mut R, span: u64) -> u64 {
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                if span == 0 {
                    // Full u64 domain.
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(below(rng, span) as $t)
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_from<R: Rng>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        let unit = f64::random(rng);
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange<f64> for std::ops::RangeInclusive<f64> {
    fn sample_from<R: Rng>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample from empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64);
        start + unit * (end - start)
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn unit_float_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn range_sampling_bounds_and_coverage() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            let x = rng.random_range(3usize..13);
            assert!((3..13).contains(&x));
            seen[x - 3] = true;
        }
        assert!(seen.iter().all(|&s| s), "all outcomes reachable");
        for _ in 0..1_000 {
            let x = rng.random_range(0u64..=7);
            assert!(x <= 7);
            let f = rng.random_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&f));
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(3);
        let _ = rng.random_range(5u32..5);
    }

    #[test]
    fn shuffle_is_permutation() {
        use crate::seq::SliceRandom;
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements almost surely move");
    }
}
