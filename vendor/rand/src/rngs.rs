//! Concrete generators (subset of `rand::rngs`).

use crate::{Rng, SeedableRng};

/// The workspace's standard deterministic generator: xoshiro256++ with
/// SplitMix64 seed expansion.
///
/// Not the ChaCha-based generator of the real `rand` crate, but it passes
/// the same statistical batteries that matter for simulation (BigCrush for
/// the xoshiro family) and is deterministic per seed, which is the only
/// property this workspace depends on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SeedableRng for StdRng {
    fn seed_from_u64(state: u64) -> Self {
        let mut sm = state;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        StdRng { s }
    }
}

impl Rng for StdRng {
    fn next_u64(&mut self) -> u64 {
        // xoshiro256++ by Blackman & Vigna (public domain reference code).
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}
