//! Offline drop-in subset of the `criterion` benchmarking API.
//!
//! This workspace builds without crates.io access, so the external
//! `criterion` crate is replaced by this vendored implementation of the
//! surface the repo's benches use: [`Criterion`], [`BenchmarkGroup`],
//! [`BenchmarkId`], [`Bencher::iter`], [`black_box`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Instead of criterion's statistical engine it times a fixed number of
//! iterations per benchmark with [`std::time::Instant`] and reports the
//! mean, which is enough to compare orders of magnitude and catch gross
//! regressions by eye. `--bench` filtering and baselines are not
//! supported; every registered benchmark runs.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver (subset of `criterion::Criterion`).
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets how many timed iterations each benchmark runs.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: impl Display, mut f: F) {
        run_one(&name.to_string(), self.sample_size, &mut f);
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            _parent: std::marker::PhantomData,
        }
    }
}

/// A named set of related benchmarks (subset of
/// `criterion::BenchmarkGroup`).
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: std::marker::PhantomData<&'a mut Criterion>,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed iterations each benchmark in the group runs.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs a benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, mut f: F) {
        run_one(&format!("{}/{}", self.name, id), self.sample_size, &mut f);
    }

    /// Runs a parameterized benchmark within the group.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) {
        let name = format!("{}/{}", self.name, id);
        run_one(&name, self.sample_size, &mut |b: &mut Bencher| f(b, input));
    }

    /// Ends the group (kept for API parity; groups need no teardown here).
    pub fn finish(self) {}
}

/// Identifies one parameterized benchmark (subset of
/// `criterion::BenchmarkId`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: Option<String>,
    parameter: String,
}

impl BenchmarkId {
    /// An id with both a function name and a parameter value.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            function: Some(function.to_string()),
            parameter: parameter.to_string(),
        }
    }

    /// An id carrying only a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            function: None,
            parameter: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.function {
            Some(func) => write!(f, "{}/{}", func, self.parameter),
            None => write!(f, "{}", self.parameter),
        }
    }
}

/// Times closures handed to it by a benchmark body (subset of
/// `criterion::Bencher`).
pub struct Bencher {
    iters: usize,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, running it once to warm up and then `iters` times
    /// under the clock.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine());
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one(name: &str, sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        iters: sample_size,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let mean = b.elapsed.as_secs_f64() / b.iters.max(1) as f64;
    println!(
        "bench {name:<50} {:>12} /iter ({} iters)",
        fmt_time(mean),
        b.iters
    );
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} us", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Declares a group of benchmark functions (both the plain and the
/// `name/config/targets` forms of `criterion::criterion_group!`).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            $(
                let mut criterion: $crate::Criterion = $config;
                $target(&mut criterion);
            )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark entry point (subset of
/// `criterion::criterion_main!`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        c.bench_function("direct", |b| b.iter(|| black_box(2u64 + 2)));
        let mut g = c.benchmark_group("grouped");
        g.sample_size(5);
        g.bench_function("plain", |b| b.iter(|| black_box(1u64 << 20)));
        for n in [4u64, 16] {
            g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
                b.iter(|| (0..n).map(black_box).sum::<u64>())
            });
        }
        g.bench_with_input(BenchmarkId::new("named", 9), &9u64, |b, &n| {
            b.iter(|| black_box(n * n))
        });
        g.finish();
    }

    criterion_group!(plain_group, sample_bench);
    criterion_group! {
        name = configured_group;
        config = Criterion::default().sample_size(3);
        targets = sample_bench
    }

    #[test]
    fn groups_run_all_benchmarks() {
        plain_group();
        configured_group();
    }

    #[test]
    fn benchmark_id_formatting() {
        assert_eq!(BenchmarkId::from_parameter(7).to_string(), "7");
        assert_eq!(BenchmarkId::new("f", "x").to_string(), "f/x");
    }
}
