//! Collection strategies (subset of `proptest::collection`).

use crate::{Strategy, TestRng};

/// Anything usable as a vector length specification: an exact `usize`,
/// a `Range<usize>`, or a `RangeInclusive<usize>`.
pub trait SizeRange {
    /// Draws a concrete length.
    fn sample_len(&self, rng: &mut TestRng) -> usize;
}

impl SizeRange for usize {
    fn sample_len(&self, _rng: &mut TestRng) -> usize {
        *self
    }
}

impl SizeRange for std::ops::Range<usize> {
    fn sample_len(&self, rng: &mut TestRng) -> usize {
        assert!(self.start < self.end, "empty length range");
        self.start + rng.below((self.end - self.start) as u64) as usize
    }
}

impl SizeRange for std::ops::RangeInclusive<usize> {
    fn sample_len(&self, rng: &mut TestRng) -> usize {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "empty length range");
        start + rng.below((end - start + 1) as u64) as usize
    }
}

/// Strategy for `Vec`s whose elements come from `element` and whose length
/// comes from `size`.
pub fn vec<S: Strategy, L: SizeRange>(element: S, size: L) -> VecStrategy<S, L> {
    VecStrategy { element, size }
}

/// Strategy returned by [`vec()`].
pub struct VecStrategy<S, L> {
    element: S,
    size: L,
}

impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.sample_len(rng);
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}
