//! Offline drop-in subset of the `proptest` API.
//!
//! This workspace builds without crates.io access, so the external
//! `proptest` crate is replaced by this vendored implementation of the
//! surface the repo's tests use: the [`proptest!`] macro (with an optional
//! `#![proptest_config(..)]` header), [`Strategy`] with `prop_map` /
//! `prop_flat_map`, range and tuple strategies, [`collection::vec`],
//! [`any`], and the `prop_assert*` / [`prop_assume!`] macros.
//!
//! Differences from the real crate, deliberate and documented:
//!
//! * **No shrinking.** A failing case panics with the generated inputs
//!   printed; minimization is left to the reader. Failure output includes
//!   the deterministic per-test seed, and cases regenerate identically on
//!   every run, so failures are always reproducible.
//! * **Deterministic.** Each test derives its case stream from a hash of
//!   the test name — there is no `proptest-regressions` persistence and no
//!   environment-variable seeding.

#![warn(missing_docs)]

use std::fmt::Debug;

pub mod collection;

/// The generator driving strategy sampling.
#[derive(Debug, Clone)]
pub struct TestRng(rand::rngs::StdRng);

impl TestRng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        use rand::SeedableRng;
        TestRng(rand::rngs::StdRng::seed_from_u64(seed))
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        use rand::Rng;
        self.0.next_u64()
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        use rand::Rng;
        self.0.random::<f64>()
    }

    /// Uniform draw from `[0, span)`.
    pub fn below(&mut self, span: u64) -> u64 {
        debug_assert!(span > 0);
        ((self.next_u64() as u128 * span as u128) >> 64) as u64
    }
}

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The type of value this strategy generates.
    type Value: Debug;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Builds a dependent strategy from each generated value.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

/// Strategy adapter returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Strategy adapter returned by [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;
    fn sample(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty strategy range");
                let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}
impl_int_range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for std::ops::RangeInclusive<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "empty strategy range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64);
        start + unit * (end - start)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized + Debug {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy over the full domain of `T` (subset of `proptest::arbitrary`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Per-test configuration (subset of `proptest::test_runner::Config`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` successful cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// An assertion failed; the whole test fails.
    Fail(String),
    /// A `prop_assume!` rejected the inputs; the case is retried.
    Reject(String),
}

/// Result type produced by a generated test body.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Drives one property test: generates cases until `config.cases` succeed,
/// panicking on the first failure with the offending inputs.
///
/// Used by the [`proptest!`] macro expansion; not part of the real
/// proptest API.
pub fn run_cases(
    name: &str,
    config: &ProptestConfig,
    mut case: impl FnMut(&mut TestRng) -> (String, TestCaseResult),
) {
    // Deterministic per-test seed: FNV-1a over the test name.
    let mut seed = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        seed ^= b as u64;
        seed = seed.wrapping_mul(0x1000_0000_01b3);
    }
    let mut rng = TestRng::new(seed);
    let mut passed = 0u32;
    let mut rejected = 0u32;
    let max_rejects = config.cases.saturating_mul(16).max(1024);
    while passed < config.cases {
        let (inputs, result) = case(&mut rng);
        match result {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject(_)) => {
                rejected += 1;
                assert!(
                    rejected <= max_rejects,
                    "property `{name}`: too many rejected cases ({rejected})"
                );
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!(
                    "property `{name}` failed after {passed} passing case(s) (seed {seed:#x})\
                     \n  inputs: {inputs}\n  {msg}"
                );
            }
        }
    }
}

/// Asserts a condition inside a `proptest!` body, failing the case (not
/// panicking directly) so the harness can report the generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)*)));
        }
    };
}

/// Asserts two values are equal inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{:?}` != `{:?}` ({} != {})",
            l, r, stringify!($left), stringify!($right)
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "{}: `{:?}` != `{:?}`", format!($($fmt)*), l, r);
    }};
}

/// Asserts two values are unequal inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{:?}` == `{:?}` ({} == {})",
            l, r, stringify!($left), stringify!($right)
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "{}: both `{:?}`", format!($($fmt)*), l);
    }};
}

/// Rejects the current generated case (it is regenerated, not failed).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

/// Defines property tests: each `fn name(arg in strategy, ..) { body }`
/// becomes a `#[test]` that samples the strategies and runs the body for
/// every generated case.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_tests! { config = $config; $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_tests! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Expansion helper for [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    ( config = $config:expr; ) => {};
    (
        config = $config:expr;
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $config;
            $crate::run_cases(stringify!($name), &config, |rng| {
                $(let $arg = $crate::Strategy::sample(&($strategy), rng);)+
                let inputs = {
                    let mut s = ::std::string::String::new();
                    $(
                        s.push_str(concat!(stringify!($arg), " = "));
                        s.push_str(&format!("{:?}, ", &$arg));
                    )+
                    s
                };
                let result: $crate::TestCaseResult = (|| { $body ::std::result::Result::Ok(()) })();
                (inputs, result)
            });
        }
        $crate::__proptest_tests! { config = $config; $($rest)* }
    };
}

/// The usual glob import, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary,
        ProptestConfig, Strategy, TestCaseError, TestCaseResult,
    };
    /// Alias so `prop::collection::vec(..)` style paths keep working.
    pub mod prop {
        pub use crate::collection;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn small_even() -> impl Strategy<Value = u32> {
        (0u32..50).prop_map(|x| x * 2)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..10, y in 0u64..=7, f in -1.0f64..1.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(y <= 7);
            prop_assert!((-1.0..1.0).contains(&f));
        }

        #[test]
        fn map_and_flat_map_compose(x in small_even(), v in crate::collection::vec(0u32..5, 1..10)) {
            prop_assert_eq!(x % 2, 0);
            prop_assert!(!v.is_empty() && v.len() < 10);
            prop_assert!(v.iter().all(|&e| e < 5));
        }

        #[test]
        fn flat_map_dependent_sizes(v in (1usize..=8).prop_flat_map(|n| crate::collection::vec(0u32..100, n))) {
            prop_assert!((1..=8).contains(&v.len()));
        }

        #[test]
        fn assume_rejects_without_failing(x in 0u32..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    #[test]
    #[should_panic(expected = "inputs:")]
    fn failures_report_inputs() {
        crate::run_cases("always_fails", &ProptestConfig::with_cases(10), |rng| {
            let x = crate::Strategy::sample(&(0u32..10), rng);
            (
                format!("x = {x:?}"),
                Err(TestCaseError::Fail("boom".into())),
            )
        });
    }
}
