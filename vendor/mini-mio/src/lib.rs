//! Offline stand-in for the [`mio`](https://docs.rs/mio) crate: the exact
//! API subset this workspace uses, implemented directly over Linux
//! `epoll(7)` with no external dependencies.
//!
//! Like the other crates under `vendor/`, this exists because the
//! workspace must build with **no registry access**: the broker's
//! event-loop transport needs readiness polling, so this crate declares
//! the handful of libc symbols it needs (`epoll_create1`, `epoll_ctl`,
//! `epoll_wait`, `close`, `setrlimit`) as `extern "C"` — they are part of
//! the C library every Rust binary on Linux already links — and wraps
//! them in a small safe API:
//!
//! * [`Poll`] — one `epoll` instance; register file descriptors with a
//!   [`Token`] and an [`Interest`], then [`Poll::poll`] for readiness
//!   [`Events`].
//! * [`Token`] — a plain `usize` the caller picks (slab index, sentinel).
//! * [`Interest`] — readable/writable, combinable with `|`.
//! * [`Events`] / [`Event`] — a reusable buffer of readiness events.
//!
//! Registration is **level-triggered** (the `mio` default): an event
//! repeats on every poll while the condition holds, so a consumer that
//! drains partially is re-notified instead of wedged. `EPOLLRDHUP` is
//! always requested alongside reads so peer hangups surface as readable
//! events (a zero-byte read), matching `mio`'s behavior.

#![warn(missing_docs)]

#[cfg(not(target_os = "linux"))]
compile_error!("the mini-mio offline stand-in supports Linux (epoll) only");

use std::io;
use std::os::fd::{AsRawFd, RawFd};
use std::time::Duration;

// The epoll constants this crate needs, transcribed from
// <sys/epoll.h> / <bits/epoll.h> (they are ABI, not configuration).
const EPOLL_CLOEXEC: i32 = 0o2000000;
const EPOLL_CTL_ADD: i32 = 1;
const EPOLL_CTL_DEL: i32 = 2;
const EPOLL_CTL_MOD: i32 = 3;
const EPOLLIN: u32 = 0x001;
const EPOLLOUT: u32 = 0x004;
const EPOLLERR: u32 = 0x008;
const EPOLLHUP: u32 = 0x010;
const EPOLLRDHUP: u32 = 0x2000;

/// `struct epoll_event`. On x86 and x86-64 the kernel ABI packs it (the
/// 64-bit data member is 4-byte aligned); other architectures use natural
/// alignment — same split glibc and the `libc` crate make.
#[repr(C)]
#[cfg_attr(any(target_arch = "x86", target_arch = "x86_64"), repr(packed))]
#[derive(Clone, Copy)]
struct EpollEvent {
    events: u32,
    data: u64,
}

/// `struct rlimit` for [`raise_nofile_limit`] (rlim_t is 64-bit here).
#[repr(C)]
struct RLimit {
    cur: u64,
    max: u64,
}

const RLIMIT_NOFILE: i32 = 7;

extern "C" {
    fn epoll_create1(flags: i32) -> i32;
    fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
    fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout_ms: i32) -> i32;
    fn close(fd: i32) -> i32;
    fn getrlimit(resource: i32, rlim: *mut RLimit) -> i32;
    fn setrlimit(resource: i32, rlim: *const RLimit) -> i32;
}

fn cvt(ret: i32) -> io::Result<i32> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

/// Caller-chosen identifier attached to a registration and echoed back in
/// every [`Event`] for it — typically a slab index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Token(pub usize);

/// Readiness to wait for: readable, writable, or both (`R | W`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest(u8);

impl Interest {
    /// Wait for the descriptor to become readable (incl. peer hangup).
    pub const READABLE: Interest = Interest(1);
    /// Wait for the descriptor to become writable.
    pub const WRITABLE: Interest = Interest(2);

    /// True when this interest includes readability.
    pub fn is_readable(self) -> bool {
        self.0 & 1 != 0
    }

    /// True when this interest includes writability.
    pub fn is_writable(self) -> bool {
        self.0 & 2 != 0
    }

    fn to_epoll(self) -> u32 {
        let mut bits = 0;
        if self.is_readable() {
            bits |= EPOLLIN | EPOLLRDHUP;
        }
        if self.is_writable() {
            bits |= EPOLLOUT;
        }
        bits
    }
}

impl std::ops::BitOr for Interest {
    type Output = Interest;
    fn bitor(self, rhs: Interest) -> Interest {
        Interest(self.0 | rhs.0)
    }
}

/// One readiness notification: which [`Token`] and which conditions.
#[derive(Debug, Clone, Copy)]
pub struct Event {
    token: usize,
    bits: u32,
}

impl Event {
    /// The token the ready descriptor was registered with.
    pub fn token(&self) -> Token {
        Token(self.token)
    }

    /// Readable — data pending, a peer hangup, or an error condition
    /// (errors surface through the subsequent read/write call).
    pub fn is_readable(&self) -> bool {
        self.bits & (EPOLLIN | EPOLLRDHUP | EPOLLHUP | EPOLLERR) != 0
    }

    /// Writable (or an error condition, which the write call will report).
    pub fn is_writable(&self) -> bool {
        self.bits & (EPOLLOUT | EPOLLHUP | EPOLLERR) != 0
    }

    /// The peer closed its end (or the descriptor errored).
    pub fn is_closed(&self) -> bool {
        self.bits & (EPOLLRDHUP | EPOLLHUP | EPOLLERR) != 0
    }
}

/// Reusable buffer of [`Event`]s filled by [`Poll::poll`]. Allocates its
/// capacity once; polling never allocates.
pub struct Events {
    buf: Vec<EpollEvent>,
    len: usize,
}

impl Events {
    /// A buffer receiving at most `capacity` events per poll.
    pub fn with_capacity(capacity: usize) -> Events {
        Events {
            buf: vec![EpollEvent { events: 0, data: 0 }; capacity.max(1)],
            len: 0,
        }
    }

    /// Events delivered by the most recent poll.
    pub fn iter(&self) -> impl Iterator<Item = Event> + '_ {
        self.buf[..self.len].iter().map(|e| Event {
            token: e.data as usize,
            bits: e.events,
        })
    }

    /// Number of events delivered by the most recent poll.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the most recent poll delivered nothing.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// One epoll instance: register descriptors, then wait for readiness.
pub struct Poll {
    epfd: RawFd,
}

impl Poll {
    /// Creates a new epoll instance (close-on-exec).
    pub fn new() -> io::Result<Poll> {
        // SAFETY: plain syscall, no pointers.
        let epfd = cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
        Ok(Poll { epfd })
    }

    fn ctl(&self, op: i32, fd: RawFd, token: Token, interest: Interest) -> io::Result<()> {
        let mut ev = EpollEvent {
            events: interest.to_epoll(),
            data: token.0 as u64,
        };
        // SAFETY: `ev` outlives the call; the kernel copies it.
        cvt(unsafe { epoll_ctl(self.epfd, op, fd, &mut ev) })?;
        Ok(())
    }

    /// Starts watching `source` for `interest`, tagging events with
    /// `token`. The registration is level-triggered.
    pub fn register<S: AsRawFd>(
        &self,
        source: &S,
        token: Token,
        interest: Interest,
    ) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, source.as_raw_fd(), token, interest)
    }

    /// Replaces the interest (and token) of an existing registration.
    pub fn reregister<S: AsRawFd>(
        &self,
        source: &S,
        token: Token,
        interest: Interest,
    ) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, source.as_raw_fd(), token, interest)
    }

    /// Stops watching `source`.
    pub fn deregister<S: AsRawFd>(&self, source: &S) -> io::Result<()> {
        let mut ev = EpollEvent { events: 0, data: 0 };
        // SAFETY: a non-null event pointer keeps pre-2.6.9 kernels happy,
        // per the epoll_ctl man page; the kernel ignores it for DEL.
        cvt(unsafe { epoll_ctl(self.epfd, EPOLL_CTL_DEL, source.as_raw_fd(), &mut ev) })?;
        Ok(())
    }

    /// Waits until at least one registered descriptor is ready or the
    /// timeout elapses (`None` waits forever, `Some(ZERO)` polls), filling
    /// `events`. Returns the number of events delivered. `EINTR` is
    /// retried internally.
    pub fn poll(&mut self, events: &mut Events, timeout: Option<Duration>) -> io::Result<usize> {
        let timeout_ms: i32 = match timeout {
            // Round sub-millisecond timeouts up so Some(1µs) still yields
            // the CPU instead of spinning as a zero-timeout poll.
            Some(t) if t.is_zero() => 0,
            Some(t) => t.as_millis().clamp(1, i32::MAX as u128) as i32,
            None => -1,
        };
        loop {
            // SAFETY: the buffer is valid for `buf.len()` events and the
            // kernel writes at most that many.
            let n = unsafe {
                epoll_wait(
                    self.epfd,
                    events.buf.as_mut_ptr(),
                    events.buf.len() as i32,
                    timeout_ms,
                )
            };
            if n >= 0 {
                events.len = n as usize;
                return Ok(n as usize);
            }
            let err = io::Error::last_os_error();
            if err.kind() != io::ErrorKind::Interrupted {
                return Err(err);
            }
        }
    }
}

impl Drop for Poll {
    fn drop(&mut self) {
        // SAFETY: we own the descriptor and drop it exactly once.
        unsafe {
            close(self.epfd);
        }
    }
}

/// Raises the process's open-file soft limit to at least `want`
/// descriptors (raising the hard limit too when the process may — e.g.
/// running as root), and returns the resulting soft limit. A fleet of
/// 10k+ loopback tuners holds two descriptors per connection, which
/// outgrows default limits; benches call this before connecting.
pub fn raise_nofile_limit(want: u64) -> io::Result<u64> {
    let mut lim = RLimit { cur: 0, max: 0 };
    // SAFETY: `lim` is a valid out-pointer.
    cvt(unsafe { getrlimit(RLIMIT_NOFILE, &mut lim) })?;
    if lim.cur >= want {
        return Ok(lim.cur);
    }
    let hard = lim.max.max(want);
    let attempt = RLimit {
        cur: want.max(lim.cur),
        max: hard,
    };
    // SAFETY: `attempt` is a valid in-pointer.
    if unsafe { setrlimit(RLIMIT_NOFILE, &attempt) } == 0 {
        return Ok(attempt.cur);
    }
    // Unprivileged: the hard limit is a ceiling — take what we can get.
    let capped = RLimit {
        cur: want.min(lim.max),
        max: lim.max,
    };
    // SAFETY: as above.
    cvt(unsafe { setrlimit(RLIMIT_NOFILE, &capped) })?;
    Ok(capped.cur)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};

    #[test]
    fn writable_then_readable_round_trip() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        client.set_nonblocking(true).unwrap();
        let (mut server, _) = listener.accept().unwrap();

        let mut poll = Poll::new().unwrap();
        let mut events = Events::with_capacity(8);
        poll.register(&client, Token(7), Interest::READABLE | Interest::WRITABLE)
            .unwrap();

        // A fresh connected socket is writable immediately.
        poll.poll(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        let ev = events.iter().next().expect("one event");
        assert_eq!(ev.token(), Token(7));
        assert!(ev.is_writable());
        assert!(!ev.is_readable());

        // Not readable until the peer writes.
        server.write_all(b"ping").unwrap();
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        loop {
            poll.poll(&mut events, Some(Duration::from_millis(10)))
                .unwrap();
            if events.iter().any(|e| e.is_readable()) {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "never became readable"
            );
        }
        let mut buf = [0u8; 4];
        (&client).read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"ping");
    }

    #[test]
    fn peer_close_surfaces_as_readable_close() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        client.set_nonblocking(true).unwrap();
        let (server, _) = listener.accept().unwrap();

        let mut poll = Poll::new().unwrap();
        let mut events = Events::with_capacity(8);
        poll.register(&client, Token(0), Interest::READABLE)
            .unwrap();
        drop(server);

        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        loop {
            poll.poll(&mut events, Some(Duration::from_millis(10)))
                .unwrap();
            if events.iter().any(|e| e.is_readable() && e.is_closed()) {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "hangup never surfaced"
            );
        }
        // The readable event resolves to EOF.
        let mut buf = [0u8; 4];
        assert_eq!((&client).read(&mut buf).unwrap(), 0);
    }

    #[test]
    fn reregister_and_deregister_change_delivery() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        client.set_nonblocking(true).unwrap();
        let (_server, _) = listener.accept().unwrap();

        let mut poll = Poll::new().unwrap();
        let mut events = Events::with_capacity(8);
        poll.register(&client, Token(1), Interest::WRITABLE)
            .unwrap();
        poll.poll(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(events.iter().any(|e| e.is_writable()));

        // Demote to read interest: the (still writable) socket goes quiet.
        poll.reregister(&client, Token(2), Interest::READABLE)
            .unwrap();
        poll.poll(&mut events, Some(Duration::from_millis(20)))
            .unwrap();
        assert!(events.is_empty(), "writable must not fire after reregister");

        poll.deregister(&client).unwrap();
        poll.poll(&mut events, Some(Duration::from_millis(20)))
            .unwrap();
        assert_eq!(events.len(), 0);
    }

    #[test]
    fn zero_timeout_poll_does_not_block() {
        let mut poll = Poll::new().unwrap();
        let mut events = Events::with_capacity(4);
        let start = std::time::Instant::now();
        poll.poll(&mut events, Some(Duration::ZERO)).unwrap();
        assert!(start.elapsed() < Duration::from_secs(1));
        assert!(events.is_empty());
    }

    #[test]
    fn nofile_limit_is_monotone() {
        let before = raise_nofile_limit(64).unwrap();
        assert!(before >= 64);
        // Asking again for less never lowers the limit.
        let after = raise_nofile_limit(32).unwrap();
        assert!(after >= before.min(64));
    }

    #[test]
    fn interest_combines() {
        let both = Interest::READABLE | Interest::WRITABLE;
        assert!(both.is_readable() && both.is_writable());
        assert!(!Interest::READABLE.is_writable());
        assert!(!Interest::WRITABLE.is_readable());
    }
}
