//! Offline drop-in subset of the `crossbeam` API.
//!
//! This workspace builds without crates.io access, so the external
//! `crossbeam` crate is replaced by this vendored implementation of the
//! surface the repo uses: [`scope`] (scoped threads whose panics surface
//! as an `Err` instead of aborting the caller) and [`channel`] (MPMC
//! bounded/unbounded channels). Both are built on `std` primitives —
//! `std::thread::scope` and `Mutex` + `Condvar` — trading crossbeam's
//! lock-free performance for zero dependencies, which is fine at this
//! workspace's message rates (one frame per broadcast slot).

#![warn(missing_docs)]

use std::any::Any;
use std::panic::{catch_unwind, AssertUnwindSafe};

pub mod channel;

/// A handle for spawning scoped threads (subset of
/// `crossbeam::thread::Scope`).
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Clone for Scope<'scope, 'env> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<'scope, 'env> Copy for Scope<'scope, 'env> {}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a scoped thread; the closure receives the scope again so it
    /// can spawn nested threads, mirroring crossbeam's signature.
    pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let scope = *self;
        self.inner.spawn(move || f(&scope))
    }
}

/// Creates a scope for spawning borrowing threads, joining them all before
/// returning. Returns `Err` if any unjoined spawned thread panicked,
/// mirroring `crossbeam::scope` (built here on `std::thread::scope`, whose
/// propagated panic is caught and boxed).
pub fn scope<'env, R, F>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    catch_unwind(AssertUnwindSafe(|| {
        std::thread::scope(|s| f(&Scope { inner: s }))
    }))
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scope_joins_all_threads() {
        let counter = AtomicUsize::new(0);
        let out = super::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|_| counter.fetch_add(1, Ordering::Relaxed));
            }
            42
        })
        .unwrap();
        assert_eq!(out, 42);
        assert_eq!(counter.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn scope_surfaces_worker_panic_as_err() {
        let result = super::scope(|scope| {
            scope.spawn(|_| panic!("worker died"));
        });
        assert!(result.is_err());
    }

    #[test]
    fn nested_spawn_through_scope_argument() {
        let counter = AtomicUsize::new(0);
        super::scope(|scope| {
            scope.spawn(|inner| {
                inner.spawn(|_| counter.fetch_add(1, Ordering::Relaxed));
            });
        })
        .unwrap();
        assert_eq!(counter.load(Ordering::Relaxed), 1);
    }
}
