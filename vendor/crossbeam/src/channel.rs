//! MPMC channels (subset of `crossbeam::channel`), built on
//! `Mutex<VecDeque>` + two `Condvar`s.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

struct Inner<T> {
    queue: Mutex<State<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: Option<usize>,
}

struct State<T> {
    buf: VecDeque<T>,
    senders: usize,
    receivers: usize,
}

/// Creates a channel holding at most `cap` in-flight messages; sends block
/// (or fail with [`TrySendError::Full`]) once it fills.
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    make(Some(cap))
}

/// Creates a channel with unlimited buffering.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    make(None)
}

fn make<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
    let inner = Arc::new(Inner {
        queue: Mutex::new(State {
            buf: VecDeque::new(),
            senders: 1,
            receivers: 1,
        }),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
        capacity,
    });
    (
        Sender {
            inner: Arc::clone(&inner),
        },
        Receiver { inner },
    )
}

/// Error returned by [`Sender::send`]: every receiver is gone.
#[derive(Debug, PartialEq, Eq)]
pub struct SendError<T>(pub T);

/// Error returned by [`Sender::try_send`].
#[derive(Debug, PartialEq, Eq)]
pub enum TrySendError<T> {
    /// The channel is at capacity; the message is handed back.
    Full(T),
    /// Every receiver is gone; the message is handed back.
    Disconnected(T),
}

/// Error returned by [`Receiver::recv`]: the channel is empty and every
/// sender is gone.
#[derive(Debug, PartialEq, Eq)]
pub struct RecvError;

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, PartialEq, Eq)]
pub enum TryRecvError {
    /// The channel is currently empty.
    Empty,
    /// The channel is empty and every sender is gone.
    Disconnected,
}

/// Error returned by [`Receiver::recv_timeout`].
#[derive(Debug, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// No message arrived within the timeout.
    Timeout,
    /// The channel is empty and every sender is gone.
    Disconnected,
}

/// The sending half; clone freely for multiple producers.
pub struct Sender<T> {
    inner: Arc<Inner<T>>,
}

impl<T> Sender<T> {
    /// Blocks until the message is enqueued or all receivers are gone.
    pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
        let mut state = self.inner.queue.lock().expect("channel poisoned");
        loop {
            if state.receivers == 0 {
                return Err(SendError(msg));
            }
            match self.inner.capacity {
                Some(cap) if state.buf.len() >= cap => {
                    state = self.inner.not_full.wait(state).expect("channel poisoned");
                }
                _ => {
                    state.buf.push_back(msg);
                    self.inner.not_empty.notify_one();
                    return Ok(());
                }
            }
        }
    }

    /// Enqueues without blocking, failing if the channel is full or dead.
    pub fn try_send(&self, msg: T) -> Result<(), TrySendError<T>> {
        let mut state = self.inner.queue.lock().expect("channel poisoned");
        if state.receivers == 0 {
            return Err(TrySendError::Disconnected(msg));
        }
        if let Some(cap) = self.inner.capacity {
            if state.buf.len() >= cap {
                return Err(TrySendError::Full(msg));
            }
        }
        state.buf.push_back(msg);
        self.inner.not_empty.notify_one();
        Ok(())
    }

    /// Number of messages currently buffered.
    pub fn len(&self) -> usize {
        self.inner.queue.lock().expect("channel poisoned").buf.len()
    }

    /// Whether the buffer is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.inner.queue.lock().expect("channel poisoned").senders += 1;
        Sender {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut state = self.inner.queue.lock().expect("channel poisoned");
        state.senders -= 1;
        if state.senders == 0 {
            // Wake receivers so they observe the disconnect.
            self.inner.not_empty.notify_all();
        }
    }
}

/// The receiving half; clone freely for multiple consumers (each message
/// goes to exactly one receiver).
pub struct Receiver<T> {
    inner: Arc<Inner<T>>,
}

impl<T> Receiver<T> {
    /// Blocks until a message arrives or all senders are gone.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut state = self.inner.queue.lock().expect("channel poisoned");
        loop {
            if let Some(msg) = state.buf.pop_front() {
                self.inner.not_full.notify_one();
                return Ok(msg);
            }
            if state.senders == 0 {
                return Err(RecvError);
            }
            state = self.inner.not_empty.wait(state).expect("channel poisoned");
        }
    }

    /// Dequeues without blocking.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut state = self.inner.queue.lock().expect("channel poisoned");
        if let Some(msg) = state.buf.pop_front() {
            self.inner.not_full.notify_one();
            return Ok(msg);
        }
        if state.senders == 0 {
            Err(TryRecvError::Disconnected)
        } else {
            Err(TryRecvError::Empty)
        }
    }

    /// Blocks up to `timeout` for a message.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut state = self.inner.queue.lock().expect("channel poisoned");
        loop {
            if let Some(msg) = state.buf.pop_front() {
                self.inner.not_full.notify_one();
                return Ok(msg);
            }
            if state.senders == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            let (s, result) = self
                .inner
                .not_empty
                .wait_timeout(state, deadline - now)
                .expect("channel poisoned");
            state = s;
            if result.timed_out() && state.buf.is_empty() {
                if state.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                return Err(RecvTimeoutError::Timeout);
            }
        }
    }

    /// Number of messages currently buffered.
    pub fn len(&self) -> usize {
        self.inner.queue.lock().expect("channel poisoned").buf.len()
    }

    /// Whether the buffer is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A blocking iterator draining the channel until disconnect.
    pub fn iter(&self) -> Iter<'_, T> {
        Iter { receiver: self }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.inner.queue.lock().expect("channel poisoned").receivers += 1;
        Receiver {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut state = self.inner.queue.lock().expect("channel poisoned");
        state.receivers -= 1;
        if state.receivers == 0 {
            // Wake blocked senders so they observe the disconnect.
            self.inner.not_full.notify_all();
        }
    }
}

/// Iterator returned by [`Receiver::iter`].
pub struct Iter<'a, T> {
    receiver: &'a Receiver<T>,
}

impl<T> Iterator for Iter<'_, T> {
    type Item = T;
    fn next(&mut self) -> Option<T> {
        self.receiver.recv().ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn fifo_order_single_thread() {
        let (tx, rx) = unbounded();
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        assert_eq!(rx.len(), 10);
        for i in 0..10 {
            assert_eq!(rx.recv().unwrap(), i);
        }
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn bounded_try_send_reports_full() {
        let (tx, rx) = bounded(2);
        tx.try_send(1).unwrap();
        tx.try_send(2).unwrap();
        assert_eq!(tx.try_send(3), Err(TrySendError::Full(3)));
        assert_eq!(rx.recv().unwrap(), 1);
        tx.try_send(3).unwrap();
    }

    #[test]
    fn disconnect_propagates_both_ways() {
        let (tx, rx) = bounded::<u32>(1);
        drop(rx);
        assert_eq!(tx.try_send(1), Err(TrySendError::Disconnected(1)));
        assert!(tx.send(2).is_err());

        let (tx, rx) = bounded::<u32>(1);
        tx.send(7).unwrap();
        drop(tx);
        assert_eq!(rx.recv().unwrap(), 7);
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn recv_timeout_times_out_then_delivers() {
        let (tx, rx) = unbounded::<u32>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Timeout)
        );
        let sender = thread::spawn(move || {
            thread::sleep(Duration::from_millis(20));
            tx.send(9).unwrap();
        });
        assert_eq!(rx.recv_timeout(Duration::from_secs(5)), Ok(9));
        sender.join().unwrap();
    }

    #[test]
    fn mpmc_every_message_delivered_once() {
        let (tx, rx) = bounded::<u64>(4);
        let consumers: Vec<_> = (0..3)
            .map(|_| {
                let rx = rx.clone();
                thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Ok(v) = rx.recv() {
                        got.push(v);
                    }
                    got
                })
            })
            .collect();
        drop(rx);
        let producers: Vec<_> = (0..2)
            .map(|p| {
                let tx = tx.clone();
                thread::spawn(move || {
                    for i in 0..100u64 {
                        tx.send(p * 1000 + i).unwrap();
                    }
                })
            })
            .collect();
        drop(tx);
        for p in producers {
            p.join().unwrap();
        }
        let mut all: Vec<u64> = consumers
            .into_iter()
            .flat_map(|c| c.join().unwrap())
            .collect();
        all.sort_unstable();
        let mut expect: Vec<u64> = (0..100).chain(1000..1100).collect();
        expect.sort_unstable();
        assert_eq!(all, expect);
    }

    #[test]
    fn blocking_send_unblocks_on_recv() {
        let (tx, rx) = bounded::<u32>(1);
        tx.send(1).unwrap();
        let t = thread::spawn(move || tx.send(2).map(|_| ()).is_ok());
        thread::sleep(Duration::from_millis(10));
        assert_eq!(rx.recv().unwrap(), 1);
        assert_eq!(rx.recv().unwrap(), 2);
        assert!(t.join().unwrap());
    }
}
