//! Broadcast program design studio: explore the knobs of Section 2.2.
//!
//! The paper closes asking for "concrete design principles for deciding how
//! many disks to use, what the best relative spinning speeds should be, and
//! how to segment the client access range across these disks" (Section 7).
//! This example walks that space for one workload: it sweeps disk counts
//! and Δ, reports the analytic expected delay of each candidate, runs the
//! automated optimizer, and validates the winner in simulation.
//!
//! ```text
//! cargo run --release --example program_designer
//! ```

use broadcast_disks::analytic::{expected_response_time, sqrt_rule_lower_bound};
use broadcast_disks::prelude::*;
use broadcast_disks::sched::{optimize_layout, OptimizerConfig};

fn main() {
    // The paper's workload: 1000-page access range, region Zipf θ = 0.95,
    // over a 5000-page database (cold pages exist for other clients).
    let zipf = RegionZipf::new(1000, 50, 0.95);
    let mut probs = zipf.probs().to_vec();
    probs.resize(5000, 0.0);

    println!("workload: 1000 hot pages (region Zipf 0.95) in a 5000-page database\n");

    // --- Hand-designed candidates ---------------------------------------
    println!("hand-designed candidates (analytic expected delay, no cache):");
    println!(
        "{:>28} {:>8} {:>12} {:>9}",
        "layout", "Delta", "E[delay]", "waste%"
    );
    let candidates: [(&str, &[usize]); 4] = [
        ("D1 <500,4500>", &[500, 4500]),
        ("D3 <2500,2500>", &[2500, 2500]),
        ("D4 <300,1200,3500>", &[300, 1200, 3500]),
        ("D5 <500,2000,2500>", &[500, 2000, 2500]),
    ];
    for (name, sizes) in candidates {
        for delta in [2u64, 4] {
            let layout = DiskLayout::with_delta(sizes, delta).expect("valid");
            let program = BroadcastProgram::generate(&layout).expect("valid");
            let delay = expected_response_time(&program, &probs);
            println!(
                "{name:>28} {delta:>8} {delay:>12.0} {:>8.2}%",
                program.waste() * 100.0
            );
        }
    }

    // --- Theoretical floor ----------------------------------------------
    let bound = sqrt_rule_lower_bound(&probs);
    println!("\nsquare-root-rule lower bound (variance-free ideal): {bound:.0} bu");

    // --- Automated search -------------------------------------------------
    let best = optimize_layout(
        &probs,
        &OptimizerConfig {
            max_disks: 3,
            max_delta: 7,
            max_candidates: 40,
            max_channels: 1,
        },
    )
    .expect("optimizer runs");
    println!(
        "\noptimizer: {} disks, sizes {:?}, Delta={} -> E[delay] {:.0} bu",
        best.layout.num_disks(),
        best.layout.sizes(),
        best.delta,
        best.expected_delay
    );

    // --- Validate in simulation ------------------------------------------
    let cfg = SimConfig {
        cache_size: 1,
        requests: 10_000,
        warmup_requests: 500,
        ..SimConfig::default()
    };
    let sim = simulate(&cfg, &best.layout, 5).expect("simulation runs");
    println!(
        "simulated (no cache): {:.0} bu (analytic {:.0}; agreement {:.1}%)",
        sim.mean_response_time,
        best.expected_delay,
        100.0 * (1.0 - (sim.mean_response_time - best.expected_delay).abs() / best.expected_delay)
    );

    let flat = DiskLayout::with_delta(&[5000], 0).expect("flat");
    let flat_sim = simulate(&cfg, &flat, 5).expect("simulation runs");
    println!(
        "flat broadcast, same client: {:.0} bu -> the designed program is {:.1}x faster",
        flat_sim.mean_response_time,
        flat_sim.mean_response_time / sim.mean_response_time
    );
}
