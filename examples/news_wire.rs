//! News wire: volatile broadcast data and the freshness/latency tradeoff.
//!
//! The paper's future-work question (Section 7): what changes when the
//! broadcast data changes from cycle to cycle? A news wire is the extreme
//! case — headlines update constantly, and a cached story can be stale a
//! minute after it was fetched.
//!
//! The server applies updates between major cycles (each cycle is a
//! consistent snapshot, the Datacycle discipline) and announces updated
//! page ids in the program's padding slots. The receiver picks a policy:
//! *invalidate* (drop updated stories, refetch on demand — always fresh)
//! or *serve stale* (keep latency flat, accept stale reads).
//!
//! ```text
//! cargo run --release --example news_wire
//! ```

use broadcast_disks::prelude::*;
use broadcast_disks::sim::{simulate_volatile, StalenessStrategy, VolatileConfig};

fn main() {
    // 2000 stories; breaking news on the fast disk.
    let layout = DiskLayout::with_delta(&[200, 800, 1000], 3).expect("valid layout");
    let base = SimConfig {
        access_range: 400,
        region_size: 20,
        cache_size: 100,
        // Volatile hot data: keep the hot stories on the FAST disk
        // (offset 0) — see below for what happens if you don't.
        offset: 0,
        policy: PolicyKind::Pix,
        requests: 6_000,
        warmup_requests: 1_000,
        ..SimConfig::default()
    };

    println!("news wire: 2000 stories, 100-story device cache, PIX replacement\n");
    println!(
        "{:>16}{:>16}{:>14}{:>16}{:>14}",
        "updates/cycle", "fresh (inval)", "drops", "stale policy", "stale reads"
    );
    for rate in [0.0, 5.0, 25.0, 100.0] {
        let inval = simulate_volatile(
            &base,
            &VolatileConfig {
                updates_per_cycle: rate,
                update_skew: 1.0, // headlines update where they are read
                strategy: StalenessStrategy::Invalidate,
            },
            &layout,
            17,
        )
        .expect("simulation runs");
        let stale = simulate_volatile(
            &base,
            &VolatileConfig {
                updates_per_cycle: rate,
                update_skew: 1.0,
                strategy: StalenessStrategy::ServeStale,
            },
            &layout,
            17,
        )
        .expect("simulation runs");
        println!(
            "{:>16}{:>14.1}bu{:>14}{:>14.1}bu{:>13.1}%",
            rate,
            inval.base.mean_response_time,
            inval.cache_drops,
            stale.base.mean_response_time,
            stale.stale_read_rate * 100.0
        );
    }

    // The design coupling: the same churn with the cache-aware Offset
    // trick (hot pages parked on the slowest disk) is a disaster.
    let offset_cfg = SimConfig {
        offset: 100,
        ..base.clone()
    };
    let calm = simulate_volatile(
        &offset_cfg,
        &VolatileConfig {
            updates_per_cycle: 0.0,
            update_skew: 1.0,
            strategy: StalenessStrategy::Invalidate,
        },
        &layout,
        17,
    )
    .expect("simulation runs");
    let churn = simulate_volatile(
        &offset_cfg,
        &VolatileConfig {
            updates_per_cycle: 25.0,
            update_skew: 1.0,
            strategy: StalenessStrategy::Invalidate,
        },
        &layout,
        17,
    )
    .expect("simulation runs");
    println!(
        "\nwith Offset=CacheSize (hot stories parked on the slow disk because\n\
         \"they're cached anyway\"): {:.0} bu calm -> {:.0} bu at 25 updates/cycle.\n\
         Volatile hot data belongs on the fast disk even when cached.",
        calm.base.mean_response_time, churn.base.mean_response_time
    );
}
