//! Quickstart: build a broadcast disk, inspect it, and simulate a client.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use broadcast_disks::prelude::*;

fn main() {
    // 1. Partition 5000 pages into the paper's D5 configuration:
    //    a fast disk of 500 pages, a medium disk of 2000, a slow disk of
    //    2500, with Δ = 3 (relative speeds 7 : 4 : 1).
    let layout = DiskLayout::with_delta(&[500, 2000, 2500], 3).expect("valid layout");
    let program = BroadcastProgram::generate(&layout).expect("valid program");

    println!("broadcast disk D5 at Delta=3");
    println!("  disks:        {:?} pages", layout.sizes());
    println!("  rel. speeds:  {:?}", program.disk_frequencies());
    println!("  period:       {} slots", program.period());
    println!(
        "  waste:        {:.2}% of slots are padding",
        program.waste() * 100.0
    );

    // 2. Expected delay per disk, straight from the closed form.
    let analysis = ProgramAnalysis::of(&program);
    println!("\nexpected delay by disk (no cache):");
    for (disk, first_page) in [(0, 0usize), (1, 500), (2, 2500)] {
        println!(
            "  disk {}: {:.0} broadcast units",
            disk + 1,
            analysis.per_page_delay[first_page]
        );
    }

    // 3. Simulate a client with a 500-page cache under two policies.
    println!("\nsimulating a client (cache 500 pages, 30% noise):");
    for policy in [PolicyKind::Lru, PolicyKind::Lix, PolicyKind::Pix] {
        let cfg = SimConfig {
            cache_size: 500,
            offset: 500,
            noise: 0.30,
            policy,
            requests: 5_000,
            warmup_requests: 1_000,
            ..SimConfig::default()
        };
        let out = simulate(&cfg, &layout, 7).expect("simulation runs");
        println!(
            "  {:>4}: mean response {:>7.1} bu, hit rate {:>4.1}%",
            policy.name(),
            out.mean_response_time,
            out.hit_rate * 100.0
        );
    }

    println!("\ncost-based caching (LIX/PIX) beats recency (LRU) on a broadcast disk.");
}
