//! Stock ticker dissemination: the paper's "information dispersal systems
//! for volatile, time-sensitive information such as stock prices" scenario
//! (Section 1.1).
//!
//! A broadcast server pushes quotes for 2 000 symbols to a large population
//! of receive-only terminals. Symbol popularity is heavy-tailed (a few
//! indices and mega-caps dominate). We:
//!
//! 1. let the layout optimizer design the broadcast from the popularity
//!    distribution,
//! 2. compare it against a flat broadcast and a hand-tuned layout, and
//! 3. simulate three trader profiles with different portfolios to show the
//!    zero-sum tradeoff and how caching compensates.
//!
//! ```text
//! cargo run --release --example stock_ticker
//! ```

use broadcast_disks::prelude::*;
use broadcast_disks::sched::{flat_program, optimize_layout, OptimizerConfig};
use broadcast_disks::sim::{simulate_population, ClientSpec};

fn main() {
    const SYMBOLS: usize = 2_000;

    // Heavy-tailed symbol popularity: indices first, then by market cap.
    let mut popularity: Vec<f64> = (1..=SYMBOLS).map(|r| 1.0 / (r as f64).powf(1.1)).collect();
    let total: f64 = popularity.iter().sum();
    popularity.iter_mut().for_each(|p| *p /= total);

    // --- 1. Design the broadcast program ------------------------------
    let designed = optimize_layout(
        &popularity,
        &OptimizerConfig {
            max_disks: 3,
            max_delta: 7,
            max_candidates: 32,
            max_channels: 1,
        },
    )
    .expect("optimizer runs");
    println!(
        "optimizer chose {} disks at Delta={}",
        designed.layout.num_disks(),
        designed.delta
    );
    println!("  sizes: {:?}", designed.layout.sizes());
    println!(
        "  analytic expected delay: {:.0} bu",
        designed.expected_delay
    );

    // --- 2. Compare against baselines ----------------------------------
    let flat = flat_program(SYMBOLS).expect("flat program");
    let flat_delay = broadcast_disks::analytic::expected_response_time(&flat, &popularity);
    let hand = DiskLayout::with_delta(&[200, 1800], 3).expect("hand layout");
    let hand_program = BroadcastProgram::generate(&hand).expect("hand program");
    let hand_delay = broadcast_disks::analytic::expected_response_time(&hand_program, &popularity);

    println!("\nexpected delay for the average listener:");
    println!("  flat broadcast:    {:>7.0} bu", flat_delay);
    println!("  hand-tuned <200,1800> Δ3: {:>6.0} bu", hand_delay);
    println!("  optimized layout:  {:>7.0} bu", designed.expected_delay);

    // --- 3. Three trader profiles --------------------------------------
    // An index fund (tracks the hot head), a sector desk (mid-list), and a
    // small-cap specialist (deep tail). Each has a 100-quote cache.
    let base = SimConfig {
        access_range: 200,
        region_size: 10,
        theta: 0.9,
        cache_size: 100,
        policy: PolicyKind::Lix,
        requests: 5_000,
        warmup_requests: 1_000,
        ..SimConfig::default()
    };
    let profiles = [
        ("index fund (hot head)", 0usize),
        ("sector desk (mid list)", 800),
        ("small-cap specialist (tail)", 1_700),
    ];
    let specs: Vec<ClientSpec> = profiles
        .iter()
        .map(|&(_, start)| ClientSpec {
            interest_start: start,
            config: base.clone(),
            noise: 0.10,
        })
        .collect();

    let outcome = simulate_population(&designed.layout, &specs, 99, 3).expect("population runs");
    println!("\ntrader response times on the optimized broadcast (LIX caches):");
    for ((name, _), client) in profiles.iter().zip(&outcome.per_client) {
        println!(
            "  {:<28} {:>7.1} bu  (hit rate {:>4.1}%)",
            name,
            client.mean_response_time,
            client.hit_rate * 100.0
        );
    }
    println!(
        "\npopulation mean {:.1} bu; best {:.1}, worst {:.1} — the broadcast favors the head,",
        outcome.mean_response_time, outcome.best_response_time, outcome.worst_response_time
    );
    println!("and client caches are what keep the tail-focused trader usable.");
}
