//! Wireless traffic information system: the paper's motivating mobile
//! scenario (Section 1.1) — a base station broadcasts road-segment
//! conditions to vehicles that cannot talk back.
//!
//! The server tunes its broadcast for the *average* commuter, but every
//! vehicle cares about its own route, so each client sees a noisy,
//! sub-optimal broadcast. This example measures how the choice of on-device
//! cache policy insulates a vehicle from that mismatch — the paper's
//! central cache-management result, acted out end to end.
//!
//! ```text
//! cargo run --release --example traffic_info
//! ```

use broadcast_disks::prelude::*;

fn main() {
    // 3 000 road segments: downtown arterials are hot for everyone, then
    // commuter corridors, then rural roads. Paper-style 3-disk broadcast.
    let layout = DiskLayout::with_delta(&[300, 1200, 1500], 3).expect("valid layout");
    let program = BroadcastProgram::generate(&layout).expect("valid program");
    println!(
        "base station broadcast: {:?} segments per disk, speeds {:?}",
        layout.sizes(),
        program.disk_frequencies()
    );
    println!("full cycle = {} broadcast units\n", program.period());

    // A vehicle watches 600 segments along its routes, with a 150-segment
    // cache. `noise` models how far the base station's popularity estimate
    // is from this vehicle's actual route.
    let mismatch_levels = [0.0, 0.25, 0.50];
    let policies = [
        PolicyKind::Lru,
        PolicyKind::L,
        PolicyKind::Lix,
        PolicyKind::Pix,
    ];

    println!(
        "{:>22} {:>10} {:>10} {:>10}",
        "policy \\ mismatch", "0%", "25%", "50%"
    );
    for policy in policies {
        let mut row = Vec::new();
        for &noise in &mismatch_levels {
            let cfg = SimConfig {
                access_range: 600,
                region_size: 30,
                theta: 0.95,
                cache_size: 150,
                offset: 150,
                noise,
                policy,
                requests: 6_000,
                warmup_requests: 1_500,
                ..SimConfig::default()
            };
            let out = simulate(&cfg, &layout, 21).expect("simulation runs");
            row.push(out.mean_response_time);
        }
        println!(
            "{:>22} {:>10.1} {:>10.1} {:>10.1}",
            policy.name(),
            row[0],
            row[1],
            row[2]
        );
    }

    println!(
        "\nresponse time in broadcast units — lower is better. Cost-based policies\n\
         (LIX, and the idealized PIX) hold up as the broadcast drifts away from\n\
         the vehicle's route; pure recency (LRU) does not."
    );
}
