//! Integration tests asserting the paper's headline claims end to end,
//! at reduced scale (seconds, not minutes).

use broadcast_disks::analytic::{expected_response_time, table1};
use broadcast_disks::prelude::*;
use broadcast_disks::sched::{flat_program, random_program, skewed_program};
use broadcast_disks::sim::average_seeds;
use rand::SeedableRng;

/// Scaled-down D5: same 1:4:5 shape, 500 pages.
fn d5() -> [usize; 3] {
    [50, 200, 250]
}

fn cfg(policy: PolicyKind, cache: usize, offset: usize, noise: f64) -> SimConfig {
    SimConfig {
        access_range: 100,
        region_size: 5,
        cache_size: cache,
        offset,
        noise,
        policy,
        requests: 6_000,
        warmup_requests: 1_500,
        ..SimConfig::default()
    }
}

const SEEDS: [u64; 3] = [11, 22, 33];

#[test]
fn table1_reproduces_published_numbers() {
    let rows = table1::table1();
    let expected = [
        (1.50, 1.75, 1.67),
        (1.50, 1.63, 1.50),
        (1.50, 1.44, 1.25),
        (1.50, 1.33, 1.10),
        (1.50, 1.25, 1.00),
    ];
    for (row, (f, s, m)) in rows.iter().zip(expected) {
        assert!((row.flat - f).abs() < 0.005);
        assert!((row.skewed - s).abs() < 0.005);
        assert!((row.multi_disk - m).abs() < 0.005);
    }
}

#[test]
fn multi_disk_beats_flat_for_skewed_access_no_cache() {
    // Experiment 1: with skewed access and no cache, the multi-disk
    // program wins; the win grows with Delta up to a point.
    let flat = DiskLayout::with_delta(&d5(), 0).unwrap();
    let tuned = DiskLayout::with_delta(&d5(), 3).unwrap();
    let c = cfg(PolicyKind::Pix, 1, 0, 0.0);
    let flat_rt = average_seeds(&c, &flat, &SEEDS).unwrap().mean_response_time;
    let tuned_rt = average_seeds(&c, &tuned, &SEEDS)
        .unwrap()
        .mean_response_time;
    assert!(
        tuned_rt < flat_rt * 0.7,
        "tuned {tuned_rt} should clearly beat flat {flat_rt}"
    );
}

#[test]
fn bus_stop_paradox_shows_in_simulation() {
    // Fixed-spacing multi-disk beats both clustered and random programs of
    // identical bandwidth allocation.
    let copies: Vec<u64> = (0..500).map(|p| if p < 50 { 4 } else { 1 }).collect();
    let single = DiskLayout::new(vec![500], vec![1]).unwrap();
    let multi_layout = DiskLayout::new(vec![50, 450], vec![4, 1]).unwrap();

    let skewed = skewed_program(&copies).unwrap();
    let mut rng = rand::rngs::StdRng::seed_from_u64(5);
    let random = random_program(&copies, &mut rng).unwrap();
    let multi = BroadcastProgram::generate(&multi_layout).unwrap();

    let c = cfg(PolicyKind::Pix, 1, 0, 0.0);
    let rt = |layout: &DiskLayout, prog: BroadcastProgram| {
        broadcast_disks::sim::simulate_program(&c, layout, prog, 3)
            .unwrap()
            .mean_response_time
    };
    let rt_skew = rt(&single, skewed);
    let rt_rand = rt(&single, random);
    let rt_multi = rt(&multi_layout, multi);
    assert!(rt_multi < rt_rand, "multi {rt_multi} vs random {rt_rand}");
    assert!(rt_multi < rt_skew, "multi {rt_multi} vs skewed {rt_skew}");
}

#[test]
fn p_caching_is_noise_sensitive_pix_is_not() {
    // Experiments 3 & 4: under heavy noise, P degrades much more than PIX.
    let layout = DiskLayout::with_delta(&d5(), 3).unwrap();
    let run = |policy: PolicyKind, noise: f64| {
        average_seeds(&cfg(policy, 50, 50, noise), &layout, &SEEDS)
            .unwrap()
            .mean_response_time
    };
    let p_calm = run(PolicyKind::P, 0.0);
    let p_noisy = run(PolicyKind::P, 0.6);
    let pix_calm = run(PolicyKind::Pix, 0.0);
    let pix_noisy = run(PolicyKind::Pix, 0.6);

    // Both degrade with noise…
    assert!(p_noisy > p_calm);
    assert!(pix_noisy > pix_calm);
    // …but P degrades by more, and PIX stays strictly better under noise.
    assert!(
        pix_noisy < p_noisy,
        "pix {pix_noisy} must beat p {p_noisy} under noise"
    );
}

#[test]
fn pix_beats_p_via_cheaper_misses_not_hit_rate() {
    // Figure 11: PIX may have a *lower* hit rate than P yet win on response
    // time by avoiding the slowest disk.
    let layout = DiskLayout::with_delta(&d5(), 3).unwrap();
    let p = average_seeds(&cfg(PolicyKind::P, 50, 50, 0.3), &layout, &SEEDS).unwrap();
    let pix = average_seeds(&cfg(PolicyKind::Pix, 50, 50, 0.3), &layout, &SEEDS).unwrap();

    assert!(pix.mean_response_time < p.mean_response_time);
    // PIX fetches less from the slowest disk (last access bucket).
    let slow = |o: &broadcast_disks::sim::AveragedOutcome| *o.access_fractions.last().unwrap();
    assert!(
        slow(&pix) < slow(&p),
        "pix slow-disk share {} vs p {}",
        slow(&pix),
        slow(&p)
    );
}

#[test]
fn implementable_policy_ordering_lru_l_lix() {
    // Experiment 5 (Figures 13/15): LIX < L < LRU in response time at
    // Delta=3, Noise=30%.
    let layout = DiskLayout::with_delta(&d5(), 3).unwrap();
    let run = |policy: PolicyKind| {
        average_seeds(&cfg(policy, 50, 50, 0.3), &layout, &SEEDS)
            .unwrap()
            .mean_response_time
    };
    let lru = run(PolicyKind::Lru);
    let l = run(PolicyKind::L);
    let lix = run(PolicyKind::Lix);
    let pix = run(PolicyKind::Pix);
    assert!(lix < l, "LIX {lix} must beat L {l}");
    assert!(l < lru, "L {l} must beat LRU {lru}");
    assert!(pix < lix, "PIX {pix} is the lower bound for LIX {lix}");
}

#[test]
fn lix_fetches_less_from_slow_disk_than_lru() {
    // Figure 14's mechanism.
    let layout = DiskLayout::with_delta(&d5(), 3).unwrap();
    let lru = average_seeds(&cfg(PolicyKind::Lru, 50, 50, 0.3), &layout, &SEEDS).unwrap();
    let lix = average_seeds(&cfg(PolicyKind::Lix, 50, 50, 0.3), &layout, &SEEDS).unwrap();
    assert!(
        lix.access_fractions.last().unwrap() < lru.access_fractions.last().unwrap(),
        "lix {:?} vs lru {:?}",
        lix.access_fractions,
        lru.access_fractions
    );
}

#[test]
fn simulator_agrees_with_analytic_model() {
    // The simulator and the closed form must agree without caching.
    for delta in [0, 2, 5] {
        let layout = DiskLayout::with_delta(&d5(), delta).unwrap();
        let program = BroadcastProgram::generate(&layout).unwrap();
        let zipf = RegionZipf::new(100, 5, 0.95);
        let analytic = expected_response_time(&program, zipf.probs());
        let sim = average_seeds(&cfg(PolicyKind::P, 1, 0, 0.0), &layout, &SEEDS).unwrap();
        let rel = (sim.mean_response_time - analytic).abs() / analytic;
        assert!(
            rel < 0.06,
            "delta {delta}: sim {} vs analytic {analytic}",
            sim.mean_response_time
        );
    }
}

#[test]
fn flat_disk_uniform_delay_for_all_pages() {
    // "With the flat broadcast, the expected wait for an item on the
    //  broadcast is the same for all items."
    let program = flat_program(200).unwrap();
    for p in (0..200).step_by(17) {
        assert_eq!(
            broadcast_disks::analytic::expected_delay(&program, PageId(p)),
            100.0
        );
    }
}
