//! Integration tests for the future-work extensions, exercised through the
//! facade crate exactly as a downstream user would.

use broadcast_disks::prelude::*;
use broadcast_disks::sched::IndexedBroadcast;
use broadcast_disks::sim::{
    simulate_population, simulate_prefetch, simulate_volatile, ClientSpec, StalenessStrategy,
    VolatileConfig,
};

fn d5_small() -> DiskLayout {
    DiskLayout::with_delta(&[50, 200, 250], 3).unwrap()
}

fn cfg() -> SimConfig {
    SimConfig {
        access_range: 100,
        region_size: 5,
        cache_size: 40,
        offset: 40,
        policy: PolicyKind::Pix,
        requests: 2_000,
        warmup_requests: 400,
        ..SimConfig::default()
    }
}

#[test]
fn prefetching_dominates_demand_caching() {
    let layout = d5_small();
    let demand = simulate(&cfg(), &layout, 3).unwrap();
    let pt = simulate_prefetch(&cfg(), &layout, 3).unwrap();
    assert!(
        pt.mean_response_time < demand.mean_response_time,
        "PT {} vs demand {}",
        pt.mean_response_time,
        demand.mean_response_time
    );
}

#[test]
fn extension_policies_slot_into_the_simulator() {
    // LRU-K and 2Q run through the same simulate() entry point and land
    // between LRU and PIX at the Figure-13 operating point.
    let layout = d5_small();
    let run = |policy: PolicyKind| {
        let c = SimConfig {
            noise: 0.30,
            policy,
            ..cfg()
        };
        simulate(&c, &layout, 11).unwrap().mean_response_time
    };
    let lru = run(PolicyKind::Lru);
    let lruk = run(PolicyKind::LruK);
    let lrukx = run(PolicyKind::LruKX);
    let pix = run(PolicyKind::Pix);
    assert!(lruk < lru, "LRU-K {lruk} should improve on LRU {lru}");
    assert!(
        lrukx < lruk,
        "frequency scaling should help: {lrukx} vs {lruk}"
    );
    assert!(pix < lrukx, "PIX {pix} remains the lower bound");
}

#[test]
fn volatile_freshness_latency_tradeoff() {
    let layout = d5_small();
    let mk = |strategy| VolatileConfig {
        updates_per_cycle: 25.0,
        update_skew: 1.0,
        strategy,
    };
    let fresh = simulate_volatile(&cfg(), &mk(StalenessStrategy::Invalidate), &layout, 5).unwrap();
    let stale = simulate_volatile(&cfg(), &mk(StalenessStrategy::ServeStale), &layout, 5).unwrap();
    assert_eq!(fresh.stale_reads, 0);
    assert!(stale.stale_reads > 0);
    assert!(fresh.base.mean_response_time >= stale.base.mean_response_time);
    assert!(fresh.cache_drops > 0);
}

#[test]
fn air_index_tuning_time_is_tiny() {
    let layout = d5_small();
    let program = BroadcastProgram::generate(&layout).unwrap();
    let zipf = RegionZipf::new(100, 5, 0.95);
    let mut probs = zipf.probs().to_vec();
    probs.resize(500, 0.0);

    let always_on = expected_response_time(&program, &probs);
    let ib = IndexedBroadcast::new(program, 8, 64).unwrap();
    let (access, tuning) = ib.expected_access_and_tuning(&probs);
    assert!(
        tuning < always_on / 10.0,
        "tuning {tuning} vs always-on {always_on}"
    );
    assert!(access > always_on, "indexing trades some access time");
    assert!(ib.overhead() < 0.2);
}

#[test]
fn population_and_optimizer_compose() {
    // Design a broadcast with the optimizer, then serve a population on it.
    let zipf = RegionZipf::new(100, 5, 0.95);
    let mut probs = zipf.probs().to_vec();
    probs.resize(500, 0.0);
    let best = broadcast_disks::sched::optimize_layout(
        &probs,
        &broadcast_disks::sched::OptimizerConfig {
            max_disks: 3,
            max_delta: 5,
            max_candidates: 16,
            max_channels: 1,
        },
    )
    .unwrap();

    let spec = |start: usize| ClientSpec {
        interest_start: start,
        config: SimConfig {
            cache_size: 10,
            offset: 0,
            requests: 1_000,
            warmup_requests: 100,
            ..cfg()
        },
        noise: 0.1,
    };
    let out = simulate_population(&best.layout, &[spec(0), spec(250)], 9, 2).unwrap();
    assert_eq!(out.per_client.len(), 2);
    assert!(out.best_response_time <= out.worst_response_time);
    // The matched client enjoys the optimized program.
    assert!(out.best_response_time < 2.0 * best.expected_delay);
}
