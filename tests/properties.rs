//! Property-based tests over the core invariants, spanning crates.

use broadcast_disks::cache::{build_policy, PolicyContext, PolicyKind};
use broadcast_disks::prelude::*;
use broadcast_disks::workload::AliasTable;
use proptest::prelude::*;
use rand::SeedableRng;

/// Strategy for a small but structurally diverse disk layout.
fn layout_strategy() -> impl Strategy<Value = DiskLayout> {
    (1usize..=4)
        .prop_flat_map(|n| (proptest::collection::vec(1usize..=40, n), 0u64..=7))
        .prop_map(|(sizes, delta)| DiskLayout::with_delta(&sizes, delta).expect("valid"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every generated program broadcasts page p exactly rel_freq(disk(p))
    /// times per period, evenly spaced.
    #[test]
    fn program_respects_frequencies(layout in layout_strategy()) {
        let program = BroadcastProgram::generate(&layout).unwrap();
        for p in 0..layout.total_pages() {
            let page = PageId(p as u32);
            prop_assert_eq!(program.frequency(page), layout.freq_of(page));
            prop_assert!(program.gap(page).is_some(), "page {} uneven", p);
        }
    }

    /// Period accounting: page slots + empty slots = period, and the period
    /// is max_chunks * minor_cycle as the algorithm specifies.
    #[test]
    fn program_period_accounting(layout in layout_strategy()) {
        let program = BroadcastProgram::generate(&layout).unwrap();
        let page_slots: u64 = (0..layout.total_pages())
            .map(|p| program.frequency(PageId(p as u32)))
            .sum();
        prop_assert_eq!(
            page_slots as usize + program.empty_slots(),
            program.period()
        );
    }

    /// next_arrival is sane for arbitrary request instants: never in the
    /// past, never more than one full gap away, and actually a broadcast
    /// instant of that page.
    #[test]
    fn next_arrival_is_correct(
        layout in layout_strategy(),
        t in 0.0f64..10_000.0,
        page_pick in 0usize..1000,
    ) {
        let program = BroadcastProgram::generate(&layout).unwrap();
        let page = PageId((page_pick % layout.total_pages()) as u32);
        let arrival = program.next_arrival(page, t);
        prop_assert!(arrival >= t);
        let gap = program.gap(page).unwrap();
        prop_assert!(arrival - t <= gap, "waited {} > gap {}", arrival - t, gap);
        // The arrival instant is on the page's schedule.
        let phase = arrival % program.period() as f64;
        let on_schedule = program
            .page_starts(page)
            .iter()
            .any(|&s| (s as f64 - phase).abs() < 1e-9);
        prop_assert!(on_schedule, "arrival {} not a broadcast of {}", arrival, page);
    }

    /// The offset+noise mapping stays a bijection for any parameters.
    #[test]
    fn mapping_is_always_bijective(
        layout in layout_strategy(),
        offset_frac in 0.0f64..1.0,
        noise in 0.0f64..=1.0,
        seed in any::<u64>(),
    ) {
        let n = layout.total_pages();
        let offset = ((n as f64 * offset_frac) as usize).min(n - 1);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let m = Mapping::build(&layout, offset, noise, &mut rng);
        let mut seen = vec![false; n];
        for l in 0..n {
            let p = m.to_physical(l);
            prop_assert!(!seen[p.index()]);
            seen[p.index()] = true;
            prop_assert_eq!(m.to_logical(p), l);
        }
    }

    /// All cache policies (the paper's five plus the LRU-K/2Q extensions)
    /// maintain len <= capacity, evict exactly when full, and never evict
    /// the page just inserted.
    #[test]
    fn policies_respect_capacity(
        kind_pick in 0usize..8,
        capacity in 1usize..20,
        ops in proptest::collection::vec(0u32..60, 1..300),
    ) {
        let kind = PolicyKind::ALL
            .into_iter()
            .chain(PolicyKind::EXTENSIONS)
            .nth(kind_pick)
            .unwrap();
        let ctx = PolicyContext {
            probs: (0..60).map(|i| 1.0 / (i + 1) as f64).collect(),
            page_disk: (0..60u16).map(|p| p % 3).collect(),
            disk_freqs: vec![4, 2, 1],
            alpha: 0.25,
        };
        let mut policy = build_policy(kind, capacity, &ctx);
        let mut resident = std::collections::HashSet::new();
        for (i, &page) in ops.iter().enumerate() {
            let now = i as f64;
            let page = PageId(page);
            if policy.contains(page) {
                prop_assert!(resident.contains(&page), "{kind}: phantom resident");
                policy.on_hit(page, now);
            } else {
                prop_assert!(!resident.contains(&page), "{kind}: lost resident");
                let victim = policy.insert(page, now);
                if let Some(v) = victim {
                    prop_assert_ne!(v, page, "{}: evicted the new page", kind);
                    prop_assert!(resident.remove(&v), "{}: evicted non-resident", kind);
                }
                resident.insert(page);
            }
            prop_assert_eq!(policy.len(), resident.len());
            prop_assert!(policy.len() <= capacity);
        }
    }

    /// The alias table is an exact partition of the weight mass: sampling
    /// never yields a zero-weight outcome.
    #[test]
    fn alias_never_samples_zero_weight(
        weights in proptest::collection::vec(0.0f64..10.0, 2..50),
        seed in any::<u64>(),
    ) {
        prop_assume!(weights.iter().any(|&w| w > 0.0));
        let table = AliasTable::new(&weights);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        for _ in 0..200 {
            let i = table.sample(&mut rng);
            prop_assert!(weights[i] > 0.0, "sampled zero-weight outcome {}", i);
        }
    }

    /// Region-Zipf probabilities are a valid, monotonically non-increasing
    /// distribution for any parameters.
    #[test]
    fn zipf_is_valid_distribution(
        access_range in 1usize..500,
        region_size in 1usize..60,
        theta in 0.0f64..2.0,
    ) {
        let z = RegionZipf::new(access_range, region_size, theta);
        let sum: f64 = z.probs().iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-9);
        // Region *weights* are non-increasing (per-page probabilities can
        // tick up in a ragged final region that holds fewer pages).
        let region_weight = |j: usize| -> f64 {
            let start = j * region_size;
            let end = ((j + 1) * region_size).min(access_range);
            (start..end).map(|p| z.prob(p)).sum()
        };
        for j in 1..z.num_regions() {
            prop_assert!(
                region_weight(j) <= region_weight(j - 1) + 1e-12,
                "region {} hotter than region {}", j, j - 1
            );
        }
    }

    /// Expected delay of any program equals the gap-square formula and is
    /// bounded by half the period.
    #[test]
    fn expected_delay_bounds(layout in layout_strategy()) {
        let program = BroadcastProgram::generate(&layout).unwrap();
        for p in 0..layout.total_pages() {
            let d = expected_delay(&program, PageId(p as u32));
            prop_assert!(d > 0.0);
            prop_assert!(d <= program.period() as f64 / 2.0 + 1e-9);
        }
    }
}

/// Deterministic cross-crate check: a full simulation is reproducible and
/// its outcome fields are internally consistent.
#[test]
fn outcome_internal_consistency() {
    let layout = DiskLayout::with_delta(&[30, 120, 150], 3).unwrap();
    let cfg = SimConfig {
        access_range: 60,
        region_size: 5,
        cache_size: 20,
        offset: 20,
        noise: 0.3,
        policy: PolicyKind::Lix,
        requests: 2_000,
        warmup_requests: 300,
        ..SimConfig::default()
    };
    let out = simulate(&cfg, &layout, 17).unwrap();
    assert_eq!(out.measured_requests, 2_000);
    let sum: f64 = out.access_fractions.iter().sum();
    assert!((sum - 1.0).abs() < 1e-9);
    assert_eq!(out.access_fractions[0], out.hit_rate);
    assert!(out.p50 <= out.p95);
    assert!(out.mean_response_time >= 0.0);
    assert!(out.end_time > 0.0);
}
